//! Maintenance-cost accounting.
//!
//! Figures 10b, 11b and 12b of the paper report "the average number of
//! updates required for each location update". This module defines the unit
//! of that metric: every cell-counter increment/decrement, hash-table
//! repointing, and (for the adaptive structure) cell creation/removal during
//! splits and merges counts as one update.

/// Cost counters accumulated by one maintenance operation
/// (registration, location update, profile change, or deregistration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Cell counter increments/decrements performed.
    pub counter_updates: u64,
    /// Hash-table entries written (user → cell repointings).
    pub hash_updates: u64,
    /// Grid cells materialised (adaptive splits).
    pub cells_created: u64,
    /// Grid cells discarded (adaptive merges).
    pub cells_removed: u64,
    /// Number of split operations performed.
    pub splits: u64,
    /// Number of merge operations performed.
    pub merges: u64,
}

impl MaintenanceStats {
    /// The all-zero cost.
    pub const ZERO: MaintenanceStats = MaintenanceStats {
        counter_updates: 0,
        hash_updates: 0,
        cells_created: 0,
        cells_removed: 0,
        splits: 0,
        merges: 0,
    };

    /// Total number of structure updates — the metric plotted on the y-axis
    /// of Figures 10b/11b/12b.
    pub fn total(&self) -> u64 {
        self.counter_updates + self.hash_updates + self.cells_created + self.cells_removed
    }

    /// Folds these costs into the process-wide telemetry registry
    /// (`casper_grid_*_total` counters). No-op without the `telemetry`
    /// feature. Called by the pyramid structures after every maintenance
    /// operation, so the continuously-running system exposes the same
    /// update-cost signal the figures measure offline.
    pub fn record(&self) {
        #[cfg(feature = "telemetry")]
        crate::tel::record_maintenance(self);
    }
}

impl std::ops::Add for MaintenanceStats {
    type Output = MaintenanceStats;
    fn add(self, rhs: MaintenanceStats) -> MaintenanceStats {
        MaintenanceStats {
            counter_updates: self.counter_updates + rhs.counter_updates,
            hash_updates: self.hash_updates + rhs.hash_updates,
            cells_created: self.cells_created + rhs.cells_created,
            cells_removed: self.cells_removed + rhs.cells_removed,
            splits: self.splits + rhs.splits,
            merges: self.merges + rhs.merges,
        }
    }
}

impl std::ops::AddAssign for MaintenanceStats {
    fn add_assign(&mut self, rhs: MaintenanceStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_structure_touches() {
        let s = MaintenanceStats {
            counter_updates: 4,
            hash_updates: 1,
            cells_created: 4,
            cells_removed: 0,
            splits: 1,
            merges: 0,
        };
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = MaintenanceStats {
            counter_updates: 1,
            hash_updates: 2,
            ..MaintenanceStats::ZERO
        };
        let b = MaintenanceStats {
            counter_updates: 10,
            merges: 1,
            ..MaintenanceStats::ZERO
        };
        let mut c = a;
        c += b;
        assert_eq!(c.counter_updates, 11);
        assert_eq!(c.hash_updates, 2);
        assert_eq!(c.merges, 1);
        assert_eq!(MaintenanceStats::ZERO.total(), 0);
    }
}
