//! The complete pyramid of the *basic* location anonymizer (Section 4.1).
//!
//! All `H` levels are materialised: level `h` stores `4^h` user counters in
//! a dense array, and a hash table maps each registered user to her cell at
//! the *lowest* level. Location updates touch `O(H)` counters in the worst
//! case (decrement the old path and increment the new path up to, but not
//! including, their lowest common ancestor).

use casper_geometry::Point;

use crate::hash::FastMap;
use crate::user_entry::UserEntry;
use crate::{
    bottom_up_cloak, CellId, CellStore, CloakedRegion, MaintenanceStats, Profile, PyramidStructure,
    UserId,
};

/// The complete grid pyramid backing the basic location anonymizer.
///
/// ```
/// use casper_geometry::Point;
/// use casper_grid::{CompletePyramid, Profile, PyramidStructure, UserId};
///
/// let mut pyramid = CompletePyramid::new(8);
/// pyramid.register(UserId(1), Profile::new(2, 0.0), Point::new(0.30, 0.40));
/// pyramid.register(UserId(2), Profile::new(1, 0.0), Point::new(0.31, 0.41));
///
/// let region = pyramid.cloak_user(UserId(1)).unwrap();
/// assert!(region.user_count >= 2);                  // k-anonymity
/// assert!(region.rect.contains(Point::new(0.30, 0.40)));
/// ```
#[derive(Debug, Clone)]
pub struct CompletePyramid {
    /// Number of levels `H`; levels are `0..height`, lowest is `height-1`.
    height: u8,
    /// `levels[h]` holds the `2^h * 2^h` counters of level `h`,
    /// row-major (`index = y * 2^h + x`).
    levels: Vec<Vec<u32>>,
    users: FastMap<UserId, UserEntry>,
}

impl CompletePyramid {
    /// Creates an empty pyramid with `height` levels (`height >= 1`).
    ///
    /// # Panics
    /// Panics when `height` is 0 or greater than 16 (a 16-level pyramid
    /// already has a billion lowest-level cells; the paper uses 4–9).
    pub fn new(height: u8) -> Self {
        assert!(
            (1..=16).contains(&height),
            "pyramid height must be in 1..=16"
        );
        let levels = (0..height).map(|h| vec![0u32; 1usize << (2 * h)]).collect();
        Self {
            height,
            levels,
            users: FastMap::default(),
        }
    }

    /// Rebuilds a pyramid from checkpoint records (see
    /// [`PyramidStructure::user_records`]). The complete pyramid's state
    /// is a pure function of the registered population, so the rebuilt
    /// structure is identical regardless of record order.
    pub fn from_users(
        height: u8,
        users: impl IntoIterator<Item = (UserId, Profile, Point)>,
    ) -> Self {
        let mut p = Self::new(height);
        for (uid, profile, pos) in users {
            p.register(uid, profile, pos);
        }
        p
    }

    /// The lowest pyramid level (`H - 1`).
    #[inline]
    pub fn lowest_level(&self) -> u8 {
        self.height - 1
    }

    #[inline]
    fn index(cid: CellId) -> usize {
        ((cid.y as usize) << cid.level) + cid.x as usize
    }

    fn add_along_path(&mut self, cid: CellId, delta: i64, stop_above: Option<CellId>) -> u64 {
        let mut cur = Some(cid);
        let mut touched = 0;
        while let Some(c) = cur {
            if Some(c) == stop_above {
                break;
            }
            let slot = &mut self.levels[c.level as usize][Self::index(c)];
            *slot = (*slot as i64 + delta) as u32;
            touched += 1;
            cur = c.parent();
        }
        touched
    }

    /// Lowest-level cell of a registered user.
    pub fn cell_of(&self, uid: UserId) -> Option<CellId> {
        self.users.get(&uid).map(|e| e.cid)
    }

    /// Verifies the internal-consistency invariant: every internal cell's
    /// count equals the sum of its children's counts, and the root count
    /// equals the number of registered users. Intended for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.count(CellId::ROOT) as usize != self.users.len() {
            return Err(format!(
                "root count {} != user count {}",
                self.count(CellId::ROOT),
                self.users.len()
            ));
        }
        for h in 0..self.lowest_level() {
            let extent = CellId::grid_extent(h);
            for y in 0..extent {
                for x in 0..extent {
                    let cid = CellId::new(h, x, y);
                    let sum: u32 = cid.children().iter().map(|c| self.count(*c)).sum();
                    if sum != self.count(cid) {
                        return Err(format!(
                            "cell {cid} count {} != children sum {sum}",
                            self.count(cid)
                        ));
                    }
                }
            }
        }
        for e in self.users.values() {
            if CellId::at(self.lowest_level(), e.pos) != e.cid {
                return Err(format!("hash table cell {} stale for {:?}", e.cid, e.pos));
            }
        }
        Ok(())
    }
}

impl CellStore for CompletePyramid {
    #[inline]
    fn count(&self, cid: CellId) -> u32 {
        self.levels[cid.level as usize][Self::index(cid)]
    }
}

impl PyramidStructure for CompletePyramid {
    fn height(&self) -> u8 {
        self.height
    }

    fn register(&mut self, uid: UserId, profile: Profile, pos: Point) -> MaintenanceStats {
        // Re-registration is an update of both location and profile.
        if self.users.contains_key(&uid) {
            let mut stats = self.update_profile(uid, profile);
            stats += self.update_location(uid, pos);
            return stats;
        }
        let cid = CellId::at(self.lowest_level(), pos);
        let counter_updates = self.add_along_path(cid, 1, None);
        self.users.insert(uid, UserEntry { profile, pos, cid });
        let stats = MaintenanceStats {
            counter_updates,
            hash_updates: 1,
            ..MaintenanceStats::ZERO
        };
        stats.record();
        stats
    }

    fn update_location(&mut self, uid: UserId, pos: Point) -> MaintenanceStats {
        let Some(entry) = self.users.get_mut(&uid) else {
            return MaintenanceStats::ZERO;
        };
        let old = entry.cid;
        let new = CellId::at(self.height - 1, pos);
        entry.pos = pos;
        if old == new {
            // Same lowest-level cell: nothing to propagate.
            return MaintenanceStats::ZERO;
        }
        entry.cid = new;
        // Find the lowest common ancestor; counters at and above it are
        // unchanged by the move.
        let mut a = old;
        let mut b = new;
        while a != b {
            // Both start at the same level, so they reach the LCA together.
            a = a.parent().expect("paths must meet at the root");
            b = b.parent().expect("paths must meet at the root");
        }
        let lca = a;
        let dec = self.add_along_path(old, -1, Some(lca));
        let inc = self.add_along_path(new, 1, Some(lca));
        let stats = MaintenanceStats {
            counter_updates: dec + inc,
            hash_updates: 1,
            ..MaintenanceStats::ZERO
        };
        stats.record();
        stats
    }

    fn update_profile(&mut self, uid: UserId, profile: Profile) -> MaintenanceStats {
        if let Some(entry) = self.users.get_mut(&uid) {
            entry.profile = profile;
            let stats = MaintenanceStats {
                hash_updates: 1,
                ..MaintenanceStats::ZERO
            };
            stats.record();
            stats
        } else {
            MaintenanceStats::ZERO
        }
    }

    fn deregister(&mut self, uid: UserId) -> MaintenanceStats {
        let Some(entry) = self.users.remove(&uid) else {
            return MaintenanceStats::ZERO;
        };
        let counter_updates = self.add_along_path(entry.cid, -1, None);
        let stats = MaintenanceStats {
            counter_updates,
            hash_updates: 1,
            ..MaintenanceStats::ZERO
        };
        stats.record();
        stats
    }

    fn cloak_user(&self, uid: UserId) -> Option<CloakedRegion> {
        let entry = self.users.get(&uid)?;
        Some(bottom_up_cloak(self, entry.profile, entry.cid))
    }

    fn position_of(&self, uid: UserId) -> Option<Point> {
        self.users.get(&uid).map(|e| e.pos)
    }

    fn profile_of(&self, uid: UserId) -> Option<Profile> {
        self.users.get(&uid).map(|e| e.profile)
    }

    fn cloak_point(&self, pos: Point, profile: Profile) -> CloakedRegion {
        bottom_up_cloak(self, profile, CellId::at(self.lowest_level(), pos))
    }

    fn user_count(&self) -> usize {
        self.users.len()
    }

    fn user_ids(&self) -> Vec<UserId> {
        self.users.keys().copied().collect()
    }

    fn maintained_cells(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u64) -> UserId {
        UserId(n)
    }

    #[test]
    fn new_pyramid_is_empty_and_sized() {
        let p = CompletePyramid::new(4);
        assert_eq!(p.height(), 4);
        assert_eq!(p.user_count(), 0);
        // 1 + 4 + 16 + 64 cells
        assert_eq!(p.maintained_cells(), 85);
        assert_eq!(p.count(CellId::ROOT), 0);
    }

    #[test]
    #[should_panic]
    fn zero_height_is_rejected() {
        CompletePyramid::new(0);
    }

    #[test]
    fn register_increments_whole_path() {
        let mut p = CompletePyramid::new(4);
        let stats = p.register(uid(1), Profile::RELAXED, Point::new(0.1, 0.1));
        assert_eq!(stats.counter_updates, 4); // one per level
        assert_eq!(stats.hash_updates, 1);
        assert_eq!(p.count(CellId::ROOT), 1);
        assert_eq!(p.count(CellId::at(3, Point::new(0.1, 0.1))), 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn update_within_same_cell_is_free() {
        let mut p = CompletePyramid::new(6);
        p.register(uid(1), Profile::RELAXED, Point::new(0.101, 0.101));
        let stats = p.update_location(uid(1), Point::new(0.102, 0.102));
        assert_eq!(stats, MaintenanceStats::ZERO);
        assert_eq!(p.position_of(uid(1)).unwrap(), Point::new(0.102, 0.102));
        p.check_invariants().unwrap();
    }

    #[test]
    fn update_to_adjacent_cell_touches_only_levels_below_lca() {
        let mut p = CompletePyramid::new(6);
        // Two positions in the same level-1 quadrant but different
        // lowest-level cells.
        let a = Point::new(0.01, 0.01);
        let b = Point::new(0.26, 0.01); // crosses a level-2..5 boundary
        p.register(uid(1), Profile::RELAXED, a);
        let stats = p.update_location(uid(1), b);
        assert!(stats.counter_updates > 0);
        assert!(stats.counter_updates < 2 * 6, "LCA must cut the path");
        p.check_invariants().unwrap();
        assert_eq!(p.count(CellId::at(5, b)), 1);
        assert_eq!(p.count(CellId::at(5, a)), 0);
        assert_eq!(p.count(CellId::ROOT), 1);
    }

    #[test]
    fn update_across_the_space_touches_full_paths() {
        let mut p = CompletePyramid::new(5);
        p.register(uid(1), Profile::RELAXED, Point::new(0.01, 0.01));
        let stats = p.update_location(uid(1), Point::new(0.99, 0.99));
        // LCA is the root: 4 decrements + 4 increments (levels 1..=4).
        assert_eq!(stats.counter_updates, 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn deregister_removes_user_everywhere() {
        let mut p = CompletePyramid::new(4);
        p.register(uid(1), Profile::RELAXED, Point::new(0.4, 0.4));
        p.register(uid(2), Profile::RELAXED, Point::new(0.4, 0.41));
        let stats = p.deregister(uid(1));
        assert_eq!(stats.counter_updates, 4);
        assert_eq!(p.user_count(), 1);
        assert!(p.position_of(uid(1)).is_none());
        p.check_invariants().unwrap();
        // Deregistering twice is a no-op.
        assert_eq!(p.deregister(uid(1)), MaintenanceStats::ZERO);
    }

    #[test]
    fn reregistration_behaves_like_update() {
        let mut p = CompletePyramid::new(5);
        p.register(uid(7), Profile::new(2, 0.0), Point::new(0.1, 0.1));
        p.register(uid(7), Profile::new(3, 0.01), Point::new(0.9, 0.9));
        assert_eq!(p.user_count(), 1);
        assert_eq!(p.profile_of(uid(7)).unwrap(), Profile::new(3, 0.01));
        assert_eq!(
            p.cell_of(uid(7)).unwrap(),
            CellId::at(4, Point::new(0.9, 0.9))
        );
        p.check_invariants().unwrap();
    }

    #[test]
    fn cloak_user_satisfies_profile_when_feasible() {
        let mut p = CompletePyramid::new(6);
        // Cluster of 10 users around (0.3, 0.3).
        for i in 0..10 {
            let off = i as f64 * 0.001;
            p.register(uid(i), Profile::new(5, 0.0), Point::new(0.3 + off, 0.3));
        }
        let region = p.cloak_user(uid(0)).unwrap();
        assert!(region.user_count >= 5);
        assert!(region.rect.contains(Point::new(0.3, 0.3)));
    }

    #[test]
    fn cloak_unknown_user_is_none() {
        let p = CompletePyramid::new(4);
        assert!(p.cloak_user(uid(99)).is_none());
    }

    #[test]
    fn cloak_point_works_for_unregistered_queriers() {
        let mut p = CompletePyramid::new(6);
        for i in 0..20 {
            p.register(
                uid(i),
                Profile::RELAXED,
                Point::new(0.5 + (i as f64) * 1e-4, 0.5),
            );
        }
        let region = p.cloak_point(Point::new(0.5, 0.5), Profile::new(10, 0.0));
        assert!(region.user_count >= 10);
        assert!(region.rect.contains(Point::new(0.5, 0.5)));
    }

    #[test]
    fn profile_update_changes_subsequent_cloaks() {
        let mut p = CompletePyramid::new(8);
        for i in 0..50 {
            let x = 0.2 + (i % 10) as f64 * 0.001;
            let y = 0.2 + (i / 10) as f64 * 0.001;
            p.register(uid(i), Profile::RELAXED, Point::new(x, y));
        }
        let small = p.cloak_user(uid(0)).unwrap();
        p.update_profile(uid(0), Profile::new(1, 0.5));
        let big = p.cloak_user(uid(0)).unwrap();
        assert!(big.area() > small.area());
        assert!(big.area() >= 0.5 - 1e-12);
    }

    #[test]
    fn invariants_hold_under_random_churn() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut p = CompletePyramid::new(6);
        for i in 0..200u64 {
            p.register(
                uid(i),
                Profile::new(rng.gen_range(1..20), rng.gen_range(0.0..0.01)),
                Point::new(rng.gen(), rng.gen()),
            );
        }
        for _ in 0..1000 {
            let id = uid(rng.gen_range(0..200));
            match rng.gen_range(0..3) {
                0 => {
                    p.update_location(id, Point::new(rng.gen(), rng.gen()));
                }
                1 => {
                    p.deregister(id);
                }
                _ => {
                    p.register(id, Profile::RELAXED, Point::new(rng.gen(), rng.gen()));
                }
            }
        }
        p.check_invariants().unwrap();
    }
}
