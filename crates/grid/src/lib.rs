//! Grid-pyramid data structures and the bottom-up cloaking algorithm of
//! *The New Casper* (Section 4).
//!
//! Two interchangeable structures implement [`PyramidStructure`]:
//!
//! * [`CompletePyramid`] — the **basic** location anonymizer's structure
//!   (Figure 2): all levels materialised, hash table pointing at the lowest
//!   level.
//! * [`AdaptivePyramid`] — the **adaptive** location anonymizer's structure
//!   (Figure 3): an incomplete pyramid that only maintains cells usable as
//!   cloaking regions for the current user population, kept in shape by
//!   cell *splitting* and *merging*.
//!
//! Both run the same [`bottom_up_cloak`] (Algorithm 1); they differ only in
//! the cell the algorithm starts from and in maintenance cost, which is
//! exactly the comparison of Figures 10–12 in the paper.
//!
//! The spatial domain is the unit square `[0,1] x [0,1]`; callers with a
//! different coordinate system normalise before registering users.

#![warn(missing_docs)]

mod adaptive;
mod cell;
mod cloak;
mod complete;
pub mod hash;
mod profile;
pub mod render;
mod stats;
#[cfg(feature = "telemetry")]
mod tel;
mod user_entry;
mod versions;

pub use adaptive::AdaptivePyramid;
pub use cell::CellId;
pub use cloak::{bottom_up_cloak, bottom_up_cloak_cells_only, CellStore, CloakedRegion};
pub use complete::CompletePyramid;
pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use profile::Profile;
pub use stats::MaintenanceStats;
pub use versions::{CellVersionTable, VersionStamp};

use casper_geometry::Point;

/// Identifier of a registered mobile user (the paper's `uid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Common interface of the two pyramid structures.
///
/// All maintenance operations return the [`MaintenanceStats`] they incurred
/// so the evaluation harness can reproduce the update-cost figures.
pub trait PyramidStructure {
    /// Number of pyramid levels `H` (root level 0 .. lowest level `H-1`).
    fn height(&self) -> u8;

    /// Registers a new user with her privacy profile and exact position.
    /// Registering an existing user updates both profile and position.
    fn register(&mut self, uid: UserId, profile: Profile, pos: Point) -> MaintenanceStats;

    /// Processes a location update `(uid, x, y)`.
    /// Unknown users are ignored (zero cost).
    fn update_location(&mut self, uid: UserId, pos: Point) -> MaintenanceStats;

    /// Changes a user's privacy profile ("mobile users have the ability to
    /// change their privacy profiles at any time", Section 3).
    fn update_profile(&mut self, uid: UserId, profile: Profile) -> MaintenanceStats;

    /// Removes a user from the system.
    fn deregister(&mut self, uid: UserId) -> MaintenanceStats;

    /// Runs Algorithm 1 for a registered user, producing her cloaked
    /// region, or `None` for unknown users.
    fn cloak_user(&self, uid: UserId) -> Option<CloakedRegion>;

    /// Runs Algorithm 1 for an arbitrary position and profile (used to blur
    /// query locations).
    fn cloak_point(&self, pos: Point, profile: Profile) -> CloakedRegion;

    /// Exact position of a registered user. Trusted-side only: this never
    /// crosses to the server.
    fn position_of(&self, uid: UserId) -> Option<Point>;

    /// Privacy profile of a registered user.
    fn profile_of(&self, uid: UserId) -> Option<Profile>;

    /// Number of currently registered users.
    fn user_count(&self) -> usize;

    /// Ids of all registered users (unordered). Used for checkpointing
    /// the trusted side.
    fn user_ids(&self) -> Vec<UserId>;

    /// Snapshot of every registered user as a `(uid, profile, pos)`
    /// record — the canonical checkpoint payload of the trusted tier.
    /// Re-registering these records into an empty pyramid of the same
    /// height rebuilds a structure serving the same population with the
    /// same `(k, A_min)` guarantees.
    fn user_records(&self) -> Vec<(UserId, Profile, Point)> {
        self.user_ids()
            .into_iter()
            .filter_map(|uid| Some((uid, self.profile_of(uid)?, self.position_of(uid)?)))
            .collect()
    }

    /// Number of grid cells currently materialised — constant for the
    /// complete pyramid, workload-dependent for the adaptive one.
    fn maintained_cells(&self) -> usize;
}
