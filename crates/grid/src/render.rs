//! ASCII rendering of pyramid state, for debugging and operator
//! dashboards: occupancy maps per level and the adaptive structure's
//! maintained-leaf depth map.

use crate::{CellId, CellStore, PyramidStructure};

/// Renders the user-count map of `level` as ASCII art, one character per
/// cell (` .:+*#` buckets scaled to the densest cell), rows top to bottom.
pub fn render_level<S: CellStore>(store: &S, level: u8) -> String {
    let extent = CellId::grid_extent(level);
    let mut max = 0u32;
    for y in 0..extent {
        for x in 0..extent {
            max = max.max(store.count(CellId::new(level, x, y)));
        }
    }
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let mut out = String::with_capacity(((extent + 1) * extent) as usize);
    for y in (0..extent).rev() {
        for x in 0..extent {
            let n = store.count(CellId::new(level, x, y));
            let g = if max == 0 {
                ' '
            } else {
                let bucket = (n as usize * (glyphs.len() - 1)).div_ceil(max as usize);
                glyphs[bucket.min(glyphs.len() - 1)]
            };
            out.push(g);
        }
        out.push('\n');
    }
    out
}

/// Renders the adaptive pyramid's maintained-leaf depth as a digit map at
/// the given display resolution (a power-of-two grid): each displayed cell
/// shows the level of the maintained leaf covering it (capped at 9).
pub fn render_leaf_depths(pyramid: &crate::AdaptivePyramid, display_level: u8) -> String {
    let extent = CellId::grid_extent(display_level);
    let mut out = String::with_capacity(((extent + 1) * extent) as usize);
    for y in (0..extent).rev() {
        for x in 0..extent {
            let cell = CellId::new(display_level, x, y);
            let probe = cell.rect().center();
            let leaf = pyramid.leaf_for(probe);
            let d = leaf.level.min(9);
            out.push(char::from_digit(d as u32, 10).expect("capped at 9"));
        }
        out.push('\n');
    }
    out
}

/// One-line structural summary of any pyramid
/// (`users=... cells=... height=...`).
pub fn summarize<P: PyramidStructure>(p: &P) -> String {
    format!(
        "users={} cells={} height={}",
        p.user_count(),
        p.maintained_cells(),
        p.height()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptivePyramid, CompletePyramid, Profile, UserId};
    use casper_geometry::Point;

    #[test]
    fn render_level_shape_and_density() {
        let mut p = CompletePyramid::new(4);
        for i in 0..30 {
            p.register(
                UserId(i),
                Profile::RELAXED,
                Point::new(0.1 + (i as f64) * 1e-3, 0.9),
            );
        }
        let art = render_level(&p, 3);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 8));
        // The cluster is in the top-left: the first row must contain the
        // densest glyph, the bottom row must be empty.
        assert!(lines[0].contains('#'));
        assert!(lines[7].chars().all(|c| c == ' '));
    }

    #[test]
    fn render_empty_pyramid_is_blank() {
        let p = CompletePyramid::new(3);
        let art = render_level(&p, 2);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn leaf_depth_map_tracks_structure() {
        let mut p = AdaptivePyramid::new(6);
        // Everyone strict: structure stays at the root → all zeros.
        p.register(UserId(1), Profile::new(100, 0.0), Point::new(0.2, 0.2));
        let art = render_leaf_depths(&p, 3);
        assert!(art.lines().all(|l| l.chars().all(|c| c == '0')));
        // A relaxed pair makes part of the map deeper.
        p.register(UserId(2), Profile::RELAXED, Point::new(0.8, 0.8));
        p.register(UserId(3), Profile::RELAXED, Point::new(0.81, 0.8));
        let art = render_leaf_depths(&p, 3);
        assert!(art.chars().any(|c| c != '0' && c != '\n'));
    }

    #[test]
    fn summary_line() {
        let mut p = CompletePyramid::new(5);
        p.register(UserId(1), Profile::RELAXED, Point::new(0.5, 0.5));
        let s = summarize(&p);
        assert!(s.contains("users=1"));
        assert!(s.contains("height=5"));
    }
}
