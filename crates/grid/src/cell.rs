//! Pyramid cell identifiers and their arithmetic.
//!
//! The paper's pyramid (Figure 2) hierarchically decomposes the unit square
//! into `H` levels; the root (level 0) is one cell covering the whole space
//! and level `h` has `4^h` cells arranged in a `2^h x 2^h` grid. A cell is
//! identified by `(level, x, y)` with `x, y < 2^level`.

use casper_geometry::{Point, Rect};

/// Identifier of one pyramid grid cell: the paper's `cid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Pyramid level; the root is level 0.
    pub level: u8,
    /// Column index within the level, `0 <= x < 2^level`.
    pub x: u32,
    /// Row index within the level, `0 <= y < 2^level`.
    pub y: u32,
}

impl CellId {
    /// The root cell covering the whole space.
    pub const ROOT: CellId = CellId {
        level: 0,
        x: 0,
        y: 0,
    };

    /// Creates a cell id, asserting the coordinates fit the level.
    #[inline]
    pub fn new(level: u8, x: u32, y: u32) -> Self {
        debug_assert!(level < 32, "pyramid deeper than 32 levels is unsupported");
        debug_assert!(
            x < (1 << level) && y < (1 << level),
            "coordinates outside level grid"
        );
        Self { level, x, y }
    }

    /// Number of cells along one axis at this cell's level (`2^level`).
    #[inline]
    pub fn grid_extent(level: u8) -> u32 {
        1u32 << level
    }

    /// The cell at `level` containing point `p` of the unit square.
    ///
    /// Points on the far boundary (`x == 1.0` or `y == 1.0`) are clamped
    /// into the last cell so every point of the closed unit square maps to
    /// exactly one cell. This is the hash function `h(x, y)` of Section 4.1.
    pub fn at(level: u8, p: Point) -> Self {
        let n = Self::grid_extent(level);
        let clamp = |v: f64| -> u32 {
            let i = (v * n as f64).floor();
            (i.max(0.0) as u32).min(n - 1)
        };
        Self::new(level, clamp(p.x), clamp(p.y))
    }

    /// Side length of cells at this cell's level (unit space).
    #[inline]
    pub fn side(&self) -> f64 {
        1.0 / Self::grid_extent(self.level) as f64
    }

    /// Area of the cell: `(1/4)^level` of the unit space.
    #[inline]
    pub fn area(&self) -> f64 {
        let s = self.side();
        s * s
    }

    /// The spatial extent of the cell in the unit square.
    pub fn rect(&self) -> Rect {
        let s = self.side();
        Rect::from_coords(
            self.x as f64 * s,
            self.y as f64 * s,
            (self.x + 1) as f64 * s,
            (self.y + 1) as f64 * s,
        )
    }

    /// Parent cell one level up, or `None` for the root.
    pub fn parent(&self) -> Option<CellId> {
        if self.level == 0 {
            return None;
        }
        Some(CellId::new(self.level - 1, self.x / 2, self.y / 2))
    }

    /// The four children one level down, in
    /// (bottom-left, bottom-right, top-left, top-right) order.
    pub fn children(&self) -> [CellId; 4] {
        let l = self.level + 1;
        let (x, y) = (self.x * 2, self.y * 2);
        [
            CellId::new(l, x, y),
            CellId::new(l, x + 1, y),
            CellId::new(l, x, y + 1),
            CellId::new(l, x + 1, y + 1),
        ]
    }

    /// The child (one level down) containing point `p`.
    pub fn child_containing(&self, p: Point) -> CellId {
        let c = CellId::at(self.level + 1, p);
        debug_assert_eq!(c.parent(), Some(*self), "point not inside this cell");
        c
    }

    /// The horizontal neighbour: the sibling sharing this cell's *row*
    /// within the same parent (Algorithm 1, line 6).
    ///
    /// Returns `None` for the root, which has no siblings.
    pub fn horizontal_neighbor(&self) -> Option<CellId> {
        if self.level == 0 {
            return None;
        }
        Some(CellId::new(self.level, self.x ^ 1, self.y))
    }

    /// The vertical neighbour: the sibling sharing this cell's *column*
    /// within the same parent (Algorithm 1, line 5).
    ///
    /// Returns `None` for the root, which has no siblings.
    pub fn vertical_neighbor(&self) -> Option<CellId> {
        if self.level == 0 {
            return None;
        }
        Some(CellId::new(self.level, self.x, self.y ^ 1))
    }

    /// The ancestor of this cell at `level` (which must not exceed
    /// `self.level`).
    pub fn ancestor_at(&self, level: u8) -> CellId {
        assert!(level <= self.level, "ancestor level must be above the cell");
        let shift = self.level - level;
        CellId::new(level, self.x >> shift, self.y >> shift)
    }

    /// Returns `true` when `self` is `other` or one of its descendants.
    pub fn is_descendant_of(&self, other: &CellId) -> bool {
        self.level >= other.level && self.ancestor_at(other.level) == *other
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}({},{})", self.level, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::approx_eq;

    #[test]
    fn root_covers_unit_square() {
        assert_eq!(CellId::ROOT.rect(), Rect::unit());
        assert!(approx_eq(CellId::ROOT.area(), 1.0));
        assert!(CellId::ROOT.parent().is_none());
        assert!(CellId::ROOT.horizontal_neighbor().is_none());
        assert!(CellId::ROOT.vertical_neighbor().is_none());
    }

    #[test]
    fn level_one_quadrants() {
        let bl = CellId::new(1, 0, 0);
        assert_eq!(bl.rect(), Rect::from_coords(0.0, 0.0, 0.5, 0.5));
        assert!(approx_eq(bl.area(), 0.25));
        let tr = CellId::new(1, 1, 1);
        assert_eq!(tr.rect(), Rect::from_coords(0.5, 0.5, 1.0, 1.0));
    }

    #[test]
    fn at_maps_points_to_cells() {
        assert_eq!(CellId::at(0, Point::new(0.7, 0.2)), CellId::ROOT);
        assert_eq!(CellId::at(1, Point::new(0.7, 0.2)), CellId::new(1, 1, 0));
        assert_eq!(CellId::at(2, Point::new(0.7, 0.2)), CellId::new(2, 2, 0));
        // Far boundary clamps into the last cell.
        assert_eq!(CellId::at(2, Point::new(1.0, 1.0)), CellId::new(2, 3, 3));
        assert_eq!(CellId::at(3, Point::new(0.0, 0.0)), CellId::new(3, 0, 0));
    }

    #[test]
    fn at_is_consistent_with_rect_containment() {
        for level in 0..6u8 {
            for &(px, py) in &[(0.1, 0.9), (0.5, 0.5), (0.999, 0.001), (0.33, 0.66)] {
                let p = Point::new(px, py);
                let cid = CellId::at(level, p);
                assert!(cid.rect().contains(p), "{cid} should contain {p:?}");
            }
        }
    }

    #[test]
    fn parent_child_round_trip() {
        let c = CellId::new(4, 11, 6);
        let p = c.parent().unwrap();
        assert_eq!(p, CellId::new(3, 5, 3));
        assert!(p.children().contains(&c));
        for child in p.children() {
            assert_eq!(child.parent(), Some(p));
            assert!(p.rect().contains_rect(&child.rect()));
        }
    }

    #[test]
    fn children_partition_parent_area() {
        let p = CellId::new(2, 1, 3);
        let total: f64 = p.children().iter().map(|c| c.area()).sum();
        assert!(approx_eq(total, p.area()));
    }

    #[test]
    fn child_containing_matches_at() {
        let p = CellId::new(2, 1, 1); // covers [0.25,0.5]^2
        let pt = Point::new(0.30, 0.45);
        let c = p.child_containing(pt);
        assert_eq!(c, CellId::at(3, pt));
        assert!(c.rect().contains(pt));
    }

    #[test]
    fn neighbors_share_parent() {
        let c = CellId::new(3, 5, 2);
        let h = c.horizontal_neighbor().unwrap();
        let v = c.vertical_neighbor().unwrap();
        assert_eq!(h, CellId::new(3, 4, 2));
        assert_eq!(v, CellId::new(3, 5, 3));
        assert_eq!(h.parent(), c.parent());
        assert_eq!(v.parent(), c.parent());
        // Horizontal neighbour shares the row; vertical shares the column.
        assert_eq!(h.y, c.y);
        assert_eq!(v.x, c.x);
        // Neighbouring is symmetric.
        assert_eq!(h.horizontal_neighbor(), Some(c));
        assert_eq!(v.vertical_neighbor(), Some(c));
    }

    #[test]
    fn neighbor_union_rect_is_contiguous() {
        let c = CellId::new(3, 5, 2);
        let h = c.horizontal_neighbor().unwrap();
        let u = c.rect().union(&h.rect());
        assert!(approx_eq(u.area(), 2.0 * c.area()));
        let v = c.vertical_neighbor().unwrap();
        let u = c.rect().union(&v.rect());
        assert!(approx_eq(u.area(), 2.0 * c.area()));
    }

    #[test]
    fn ancestor_at_walks_up() {
        let c = CellId::new(5, 21, 9);
        assert_eq!(c.ancestor_at(5), c);
        assert_eq!(c.ancestor_at(4), c.parent().unwrap());
        assert_eq!(c.ancestor_at(0), CellId::ROOT);
        assert!(c.is_descendant_of(&CellId::ROOT));
        assert!(c.is_descendant_of(&c));
        assert!(!CellId::ROOT.is_descendant_of(&c));
    }

    #[test]
    fn descendants_lie_within_ancestor_rect() {
        let a = CellId::new(2, 3, 1);
        let mut stack = vec![a];
        while let Some(c) = stack.pop() {
            assert!(a.rect().contains_rect(&c.rect()));
            if c.level < 4 {
                stack.extend(c.children());
            }
        }
    }

    #[test]
    fn area_shrinks_by_factor_four_per_level() {
        for level in 0..8u8 {
            let c = CellId::new(level, 0, 0);
            assert!(approx_eq(c.area(), 0.25f64.powi(level as i32)));
        }
    }
}
