//! Per-cell version counters for lazy, exact cache invalidation.
//!
//! The privacy-aware query processor answers a cloaked query from the
//! objects inside a bounded *dependency region* (the extended area plus
//! the filter-search circles). A cached answer therefore stays correct
//! exactly as long as no object mutation lands inside that region. The
//! [`CellVersionTable`] makes that check O(cells) instead of O(objects):
//! the unit square is overlaid with a fixed `2^level x 2^level` grid of
//! monotone counters, every mutation bumps the counters of the cells its
//! old and new geometry overlap, and a reader summarises the counters of
//! the cells a dependency rectangle covers into a [`VersionStamp`].
//! Because counters only ever increase, the stamp's sum is unchanged if
//! and only if no covered cell was bumped — equality is an *exact*
//! freshness proof, never a false validation (a bump just outside the
//! dependency region in the same cell merely invalidates spuriously,
//! which is safe).

use std::sync::atomic::{AtomicU64, Ordering};

use casper_geometry::Rect;

/// Widest cell span a narrow stamp may cover before the table falls back
/// to the whole-table counter. Keeps `stamp`/`validate` O(1024) even for
/// dependency rectangles spanning most of the space, while mid-size
/// cloaked regions (a quarter of the space is ~1000 cells at the default
/// level) still get precise per-cell stamps.
const WIDE_LIMIT: usize = 1024;

/// A grid of monotone per-cell version counters over the unit square.
///
/// Writers call [`bump_rect`](Self::bump_rect) *after* applying a
/// mutation to the underlying store; readers call
/// [`stamp`](Self::stamp) *before* computing an answer and
/// [`validate`](Self::validate) before reusing a cached one. With that
/// ordering (and mutations serialised against queries, as in
/// `ServerPlane`'s reader/writer lock) a validated stamp proves no
/// relevant mutation occurred since the answer was computed.
#[derive(Debug)]
pub struct CellVersionTable {
    level: u8,
    extent: u32,
    cells: Vec<AtomicU64>,
    /// Bumped by whole-table invalidations (bulk loads); part of every
    /// narrow stamp so they invalidate too.
    epoch: AtomicU64,
    /// Bumped once per mutation regardless of geometry; the whole-table
    /// stamp for wide or unbounded dependency rectangles.
    total: AtomicU64,
}

/// Reader-side summary of the counters a dependency rectangle covered.
///
/// Produced by [`CellVersionTable::stamp`]; compare with
/// [`CellVersionTable::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionStamp {
    span: StampSpan,
    sum: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StampSpan {
    /// Sum of `epoch` and the cells in the inclusive `(x0..=x1, y0..=y1)`
    /// block.
    Narrow { x0: u32, x1: u32, y0: u32, y1: u32 },
    /// The whole-table mutation counter.
    Wide,
}

impl CellVersionTable {
    /// Default grid level: `2^6 = 64` cells per axis, matching the
    /// server's private-store `UniformGrid::new(64)` resolution.
    pub const DEFAULT_LEVEL: u8 = 6;

    /// Creates a table at [`DEFAULT_LEVEL`](Self::DEFAULT_LEVEL).
    pub fn new() -> Self {
        Self::with_level(Self::DEFAULT_LEVEL)
    }

    /// Creates a table with `2^level` cells per axis (`level <= 10`).
    pub fn with_level(level: u8) -> Self {
        assert!(level <= 10, "version grids beyond 1024x1024 are wasteful");
        let extent = 1u32 << level;
        let cells = (0..(extent as usize * extent as usize))
            .map(|_| AtomicU64::new(0))
            .collect();
        Self {
            level,
            extent,
            cells,
            epoch: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// The grid level (cells per axis is `2^level`).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Inclusive cell range covered by `[a, b]` on one axis. Boundary
    /// contact counts as coverage on *both* sides of a cell border, so a
    /// mutation touching a dependency rectangle always shares at least
    /// one covered cell with it.
    fn cover_axis(&self, a: f64, b: f64) -> (u32, u32) {
        let n = self.extent as f64;
        let last = (self.extent - 1) as i64;
        let lo = ((a * n).ceil() as i64 - 1).clamp(0, last) as u32;
        let hi = ((b * n).floor() as i64).clamp(0, last) as u32;
        (lo, hi.max(lo))
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        y as usize * self.extent as usize + x as usize
    }

    /// Records a mutation whose geometry is `rect` (the object's old or
    /// new MBR). Call *after* the store mutation is applied.
    pub fn bump_rect(&self, rect: &Rect) {
        self.total.fetch_add(1, Ordering::Release);
        if !rect.is_finite() {
            // Unbounded geometry: no narrow stamp can be proven fresh.
            self.epoch.fetch_add(1, Ordering::Release);
            return;
        }
        let (x0, x1) = self.cover_axis(rect.min.x, rect.max.x);
        let (y0, y1) = self.cover_axis(rect.min.y, rect.max.y);
        let span = (x1 - x0 + 1) as usize * (y1 - y0 + 1) as usize;
        if span > WIDE_LIMIT {
            // Cheaper (and still conservative) to invalidate everything.
            self.epoch.fetch_add(1, Ordering::Release);
            return;
        }
        for y in y0..=y1 {
            for x in x0..=x1 {
                self.cells[self.idx(x, y)].fetch_add(1, Ordering::Release);
            }
        }
    }

    /// Total number of mutations recorded so far (every `bump_*` call
    /// increments it exactly once). Readers compare it across a
    /// computation to detect concurrent writers: if it changed, the
    /// computed answer may reflect a half-applied state and must not be
    /// cached.
    pub fn mutation_count(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// Records a mutation affecting the whole table (bulk load/clear).
    pub fn bump_all(&self) {
        self.total.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Summarises the counters covering dependency rectangle `dep`.
    pub fn stamp(&self, dep: &Rect) -> VersionStamp {
        if !dep.is_finite() {
            return VersionStamp {
                span: StampSpan::Wide,
                sum: self.total.load(Ordering::Acquire),
            };
        }
        let (x0, x1) = self.cover_axis(dep.min.x, dep.max.x);
        let (y0, y1) = self.cover_axis(dep.min.y, dep.max.y);
        let span = (x1 - x0 + 1) as usize * (y1 - y0 + 1) as usize;
        if span > WIDE_LIMIT {
            return VersionStamp {
                span: StampSpan::Wide,
                sum: self.total.load(Ordering::Acquire),
            };
        }
        VersionStamp {
            span: StampSpan::Narrow { x0, x1, y0, y1 },
            sum: self.sum_narrow(x0, x1, y0, y1),
        }
    }

    fn sum_narrow(&self, x0: u32, x1: u32, y0: u32, y1: u32) -> u64 {
        let mut sum = self.epoch.load(Ordering::Acquire);
        for y in y0..=y1 {
            for x in x0..=x1 {
                sum = sum.wrapping_add(self.cells[self.idx(x, y)].load(Ordering::Acquire));
            }
        }
        sum
    }

    /// `true` when no mutation has touched the stamped region since the
    /// stamp was taken (counters are monotone, so sum equality is exact).
    pub fn validate(&self, stamp: &VersionStamp) -> bool {
        let now = match stamp.span {
            StampSpan::Wide => self.total.load(Ordering::Acquire),
            StampSpan::Narrow { x0, x1, y0, y1 } => self.sum_narrow(x0, x1, y0, y1),
        };
        now == stamp.sum
    }
}

impl Default for CellVersionTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn untouched_stamp_validates() {
        let t = CellVersionTable::new();
        let s = t.stamp(&r(0.1, 0.1, 0.2, 0.2));
        assert!(t.validate(&s));
    }

    #[test]
    fn bump_inside_invalidates_bump_outside_does_not() {
        let t = CellVersionTable::new();
        let dep = r(0.1, 0.1, 0.2, 0.2);
        let s = t.stamp(&dep);
        // Far away: different cells entirely.
        t.bump_rect(&r(0.8, 0.8, 0.85, 0.85));
        assert!(t.validate(&s));
        // Inside the dependency region.
        t.bump_rect(&r(0.15, 0.15, 0.16, 0.16));
        assert!(!t.validate(&s));
    }

    #[test]
    fn boundary_contact_is_covered_from_both_sides() {
        // Cell border at 0.5 (level 6 => borders at multiples of 1/64).
        let t = CellVersionTable::new();
        let dep = r(0.25, 0.25, 0.5, 0.5); // max touches the border
        let s = t.stamp(&dep);
        // A point mutation exactly on the shared border must invalidate,
        // whichever side its covering cells land on.
        t.bump_rect(&Rect::point(Point::new(0.5, 0.5)));
        assert!(!t.validate(&s));
    }

    #[test]
    fn bump_all_invalidates_every_stamp() {
        let t = CellVersionTable::new();
        let narrow = t.stamp(&r(0.0, 0.0, 0.01, 0.01));
        let wide = t.stamp(&Rect::unit());
        t.bump_all();
        assert!(!t.validate(&narrow));
        assert!(!t.validate(&wide));
    }

    #[test]
    fn wide_stamp_uses_total_counter() {
        let t = CellVersionTable::new();
        // The unit square covers 64x64 = 4096 cells > WIDE_LIMIT.
        let s = t.stamp(&Rect::unit());
        t.bump_rect(&r(0.7, 0.7, 0.71, 0.71));
        assert!(!t.validate(&s), "any mutation invalidates a wide stamp");
    }

    #[test]
    fn huge_bump_falls_back_to_epoch_and_invalidates_narrow_stamps() {
        let t = CellVersionTable::new();
        let s = t.stamp(&r(0.9, 0.9, 0.95, 0.95));
        t.bump_rect(&Rect::unit()); // > WIDE_LIMIT cells => epoch bump
        assert!(!t.validate(&s));
    }

    #[test]
    fn non_finite_geometry_is_conservative() {
        let t = CellVersionTable::new();
        let inf = Rect::from_coords(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let narrow = t.stamp(&r(0.4, 0.4, 0.45, 0.45));
        let wide = t.stamp(&inf);
        assert!(t.validate(&wide));
        t.bump_rect(&inf);
        assert!(!t.validate(&narrow));
        assert!(!t.validate(&wide));
        t.bump_rect(&r(0.01, 0.01, 0.02, 0.02));
        let wide2 = t.stamp(&inf);
        t.bump_rect(&r(0.99, 0.99, 0.995, 0.995));
        assert!(!t.validate(&wide2), "wide stamps see every mutation");
    }

    #[test]
    fn out_of_domain_mutations_still_bump_edge_cells() {
        let t = CellVersionTable::new();
        let s = t.stamp(&r(0.0, 0.0, 0.01, 0.01));
        t.bump_rect(&r(-0.5, -0.5, -0.1, -0.1));
        // Clamped to the corner cell: spurious invalidation, which is safe.
        assert!(!t.validate(&s));
    }

    #[test]
    fn revalidation_after_restamp() {
        let t = CellVersionTable::new();
        let dep = r(0.3, 0.3, 0.35, 0.35);
        let s1 = t.stamp(&dep);
        t.bump_rect(&r(0.31, 0.31, 0.32, 0.32));
        assert!(!t.validate(&s1));
        let s2 = t.stamp(&dep);
        assert!(t.validate(&s2), "a fresh stamp validates until bumped");
    }

    #[test]
    fn levels_scale_and_point_rects_work() {
        for level in [0u8, 1, 3, 6] {
            let t = CellVersionTable::with_level(level);
            assert_eq!(t.level(), level);
            let s = t.stamp(&r(0.2, 0.2, 0.21, 0.21));
            t.bump_rect(&Rect::point(Point::new(0.205, 0.205)));
            assert!(!t.validate(&s), "level {level}");
        }
    }
}
