//! Cross-structure tests: the basic (complete) and adaptive (incomplete)
//! pyramids must agree on everything observable through the anonymizer
//! interface.
//!
//! Section 6.1 of the paper states that "both the basic and adaptive
//! approaches yield the same accuracy as they result in the same cloaked
//! region from Algorithm 1". That is exactly true for regions found on the
//! single-cell path; when Algorithm 1 succeeds via a *neighbour union* at a
//! level below the adaptive structure's maintained leaf, the two can differ
//! by at most that one union step (the adaptive leaf invariant guarantees
//! no single deeper cell could have satisfied the profile). The tests below
//! therefore check (a) exact agreement of user counts and satisfaction, and
//! (b) that both structures always return *valid* regions, with region
//! equality asserted whenever the basic result is a single cell at or above
//! the adaptive leaf.

use casper_geometry::Point;
use casper_grid::{AdaptivePyramid, CompletePyramid, Profile, PyramidStructure, UserId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Register(u8, f64, f64, u8, f64),
    Move(u8, f64, f64),
    Deregister(u8),
    Reprofile(u8, u8, f64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<u8>(),
            any::<u8>(),
            0.0..1.0f64,
            0.0..1.0f64,
            1u8..30,
            0.0..0.01f64
        )
            .prop_map(|(id, _, x, y, k, a)| Op::Register(id, x, y, k, a)),
        (any::<u8>(), 0.0..1.0f64, 0.0..1.0f64).prop_map(|(id, x, y)| Op::Move(id, x, y)),
        any::<u8>().prop_map(Op::Deregister),
        (any::<u8>(), 1u8..30, 0.0..0.01f64).prop_map(|(id, k, a)| Op::Reprofile(id, k, a)),
    ]
}

fn apply<P: PyramidStructure>(p: &mut P, ops: &[Op]) {
    for o in ops {
        match *o {
            Op::Register(id, x, y, k, a) => {
                p.register(
                    UserId(id as u64),
                    Profile::new(k as u32, a),
                    Point::new(x, y),
                );
            }
            Op::Move(id, x, y) => {
                p.update_location(UserId(id as u64), Point::new(x, y));
            }
            Op::Deregister(id) => {
                p.deregister(UserId(id as u64));
            }
            Op::Reprofile(id, k, a) => {
                p.update_profile(UserId(id as u64), Profile::new(k as u32, a));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structures_agree_after_arbitrary_workloads(ops in prop::collection::vec(op(), 1..80)) {
        let mut basic = CompletePyramid::new(6);
        let mut adaptive = AdaptivePyramid::new(6);
        apply(&mut basic, &ops);
        apply(&mut adaptive, &ops);

        basic.check_invariants().unwrap();
        adaptive.check_invariants().unwrap();

        prop_assert_eq!(basic.user_count(), adaptive.user_count());

        for id in 0u64..=255 {
            let uid = UserId(id);
            let (b, a) = (basic.cloak_user(uid), adaptive.cloak_user(uid));
            prop_assert_eq!(b.is_some(), a.is_some());
            let (Some(b), Some(a)) = (b, a) else { continue };
            // Both regions must contain the same number of users and both
            // must satisfy the profile whenever the basic one does.
            let profile = basic.profile_of(uid).unwrap();
            let pos = basic.position_of(uid).unwrap();
            prop_assert!(b.rect.contains(pos));
            prop_assert!(a.rect.contains(pos));
            if profile.satisfied_by(b.user_count, b.area()) {
                prop_assert!(
                    profile.satisfied_by(a.user_count, a.area()),
                    "adaptive must satisfy whenever basic does (uid {})", id
                );
            }
            // Exact agreement on the single-cell path: if the basic result
            // is a single cell at or above the adaptive starting leaf, the
            // climbs coincide.
            let leaf = adaptive.cell_of(uid).unwrap();
            if b.cells.len() == 1 && b.level <= leaf.level {
                prop_assert_eq!(&b.rect, &a.rect, "uid {}", id);
                prop_assert_eq!(b.user_count, a.user_count);
            }
        }
    }

    #[test]
    fn cloaked_regions_satisfy_profiles_when_population_allows(
        users in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64, 1u32..20), 20..60)
    ) {
        let mut basic = CompletePyramid::new(7);
        let mut adaptive = AdaptivePyramid::new(7);
        let n = users.len() as u32;
        for (i, &(x, y, k)) in users.iter().enumerate() {
            let p = Profile::new(k.min(n), 0.0);
            basic.register(UserId(i as u64), p, Point::new(x, y));
            adaptive.register(UserId(i as u64), p, Point::new(x, y));
        }
        for i in 0..users.len() {
            let uid = UserId(i as u64);
            for region in [basic.cloak_user(uid).unwrap(), adaptive.cloak_user(uid).unwrap()] {
                let k = basic.profile_of(uid).unwrap().k;
                prop_assert!(
                    region.user_count >= k,
                    "region has {} users, profile wants {}",
                    region.user_count,
                    k
                );
            }
        }
    }

    #[test]
    fn update_costs_are_bounded_by_height(
        moves in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..50)
    ) {
        let mut basic = CompletePyramid::new(8);
        basic.register(UserId(1), Profile::new(5, 0.0), Point::new(0.5, 0.5));
        for &(x, y) in &moves {
            let stats = basic.update_location(UserId(1), Point::new(x, y));
            // A move can touch at most 2 * (H - 1) counters
            // (full down-path and up-path below the root).
            prop_assert!(stats.counter_updates <= 14);
        }
        basic.check_invariants().unwrap();
    }
}
