//! Ablation: what the neighbour-combination step of Algorithm 1
//! (lines 5–13) buys over a plain single-cell climb.

use casper_geometry::Point;
use casper_grid::{
    bottom_up_cloak, bottom_up_cloak_cells_only, CellId, CompletePyramid, Profile,
    PyramidStructure, UserId,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn populated(n: u64, seed: u64) -> (CompletePyramid, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = CompletePyramid::new(8);
    let mut pos = Vec::new();
    for i in 0..n {
        let pt = Point::new(rng.gen(), rng.gen());
        p.register(UserId(i), Profile::RELAXED, pt);
        pos.push(pt);
    }
    (p, pos)
}

#[test]
fn both_variants_satisfy_the_profile() {
    let (p, pos) = populated(500, 1);
    for k in [2u32, 10, 50] {
        let profile = Profile::new(k, 0.0);
        for pt in pos.iter().take(50) {
            let start = CellId::at(7, *pt);
            let with = bottom_up_cloak(&p, profile, start);
            let without = bottom_up_cloak_cells_only(&p, profile, start);
            assert!(with.user_count >= k);
            assert!(without.user_count >= k);
            assert!(with.rect.contains(*pt));
            assert!(without.rect.contains(*pt));
        }
    }
}

#[test]
fn neighbor_sharing_never_worse_and_often_better() {
    let (p, pos) = populated(2_000, 2);
    let profile = Profile::new(25, 0.0);
    let mut area_with = 0.0;
    let mut area_without = 0.0;
    let mut k_with = 0u64;
    let mut k_without = 0u64;
    let mut strictly_better = 0usize;
    for pt in pos.iter().take(500) {
        let start = CellId::at(7, *pt);
        let with = bottom_up_cloak(&p, profile, start);
        let without = bottom_up_cloak_cells_only(&p, profile, start);
        // Neighbour sharing can only stop earlier or at the same level.
        assert!(
            with.level >= without.level.saturating_sub(0) && with.area() <= without.area() + 1e-12,
            "sharing produced a larger region: {:?} vs {:?}",
            with.area(),
            without.area()
        );
        area_with += with.area();
        area_without += without.area();
        k_with += with.user_count as u64;
        k_without += without.user_count as u64;
        if with.area() < without.area() - 1e-12 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better > 50,
        "neighbour sharing should win on a sizeable fraction (won {strictly_better}/500)"
    );
    assert!(area_with < area_without);
    // Smaller regions also mean k' closer to k (less over-anonymisation).
    assert!(k_with < k_without, "{k_with} vs {k_without}");
}

#[test]
fn cells_only_variant_returns_single_cells() {
    let (p, pos) = populated(300, 3);
    for pt in pos.iter().take(100) {
        let region = bottom_up_cloak_cells_only(&p, Profile::new(10, 0.0), CellId::at(7, *pt));
        assert_eq!(region.cells.len(), 1);
    }
}
