//! A tiny optional HTTP/1.1 metrics listener.
//!
//! One blocking accept thread, one short-lived thread per request, no
//! routing beyond two paths: `/metrics` (or anything else) serves the
//! Prometheus text page, `/flight` serves the flight-recorder dump. The
//! handler closures are supplied by the caller so the listener has no
//! opinion about *which* registry it exposes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders a page for a request path.
pub type PageFn = dyn Fn(&str) -> String + Send + Sync;

/// A minimal HTTP listener serving text pages.
pub struct MetricsHttp {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsHttp {
    /// Starts serving on `bind` (use port 0 for an OS-assigned port).
    /// `page` receives the request path and returns the response body.
    pub fn spawn(bind: SocketAddr, page: Arc<PageFn>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let page = Arc::clone(&page);
                        std::thread::spawn(move || serve_one(stream, &*page));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Serves `/metrics` from `registry` and `/flight` from `flight` — the
    /// standard wiring for [`crate::Telemetry`].
    pub fn serve_telemetry(
        bind: SocketAddr,
        tel: &'static crate::Telemetry,
    ) -> std::io::Result<Self> {
        Self::spawn(
            bind,
            Arc::new(move |path: &str| {
                if path.starts_with("/flight") {
                    tel.flight.render()
                } else {
                    tel.registry.render()
                }
            }),
        )
    }

    /// The bound address (`curl http://<addr>/metrics`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn serve_one(mut stream: TcpStream, page: &PageFn) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    // Read until the end of the request head (or timeout); only the
    // request line matters.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/metrics")
        .to_string();
    let body = page(&path);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(2))).ok();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_pages_by_path() {
        let server = MetricsHttp::spawn(
            ([127, 0, 0, 1], 0).into(),
            Arc::new(|path: &str| format!("page for {path}\n")),
        )
        .unwrap();
        let metrics = http_get(server.addr(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("page for /metrics"));
        let flight = http_get(server.addr(), "/flight");
        assert!(flight.contains("page for /flight"));
        server.shutdown();
    }
}
