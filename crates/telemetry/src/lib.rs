//! Unified telemetry for the Casper stack: a lock-free metrics registry,
//! lightweight pipeline tracing, and an in-memory flight recorder.
//!
//! The paper's evaluation is entirely metric-driven — cloaking time,
//! maintenance cost, candidate-list size, the Figure 17 per-component
//! breakdown — and a production deployment needs those same signals
//! *continuously*, not just in offline figure runs. This crate is the one
//! place they all land:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (p50/p95/p99 queries), rendered as a Prometheus text
//!   page by [`Registry::render`] and as a `BENCH_*.json`-compatible blob
//!   by [`Registry::snapshot_json`]. Record paths are pure relaxed
//!   atomics.
//! * [`FlightRecorder`] — a bounded ring buffer of [`TraceEvent`]s (trace
//!   id, stage, duration, outcome) dumped after a degraded query, shard
//!   quarantine, or boot-id-change replay.
//! * [`MetricsHttp`] — a tiny optional HTTP listener serving `/metrics`
//!   and `/flight`.
//!
//! Every other crate instruments itself behind a default-on `telemetry`
//! cargo feature that gates its dependency on this crate, so
//! `--no-default-features` builds carry zero telemetry code.
//!
//! The process-wide instances live behind [`global`]; libraries use the
//! [`registry`] / [`flight`] shortcuts so all components aggregate into
//! one page.

#![warn(missing_docs)]

mod http;
mod metrics;
mod registry;
mod trace;

pub use http::{MetricsHttp, PageFn};
pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, NUM_BUCKETS};
pub use registry::Registry;
pub use trace::{next_trace_id, FlightRecorder, TraceEvent, DEFAULT_FLIGHT_CAPACITY};

use std::sync::OnceLock;

/// The process-wide telemetry sinks: one registry, one flight recorder.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The metrics registry every instrumented crate records into.
    pub registry: Registry,
    /// The flight recorder every traced stage records into.
    pub flight: FlightRecorder,
}

/// The process-wide [`Telemetry`] instance (created on first use).
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::default)
}

/// Shortcut for `&global().registry`.
pub fn registry() -> &'static Registry {
    &global().registry
}

/// Shortcut for `&global().flight`.
pub fn flight() -> &'static FlightRecorder {
    &global().flight
}
