//! The metric primitives: atomic counters, gauges, and log-bucketed
//! histograms.
//!
//! Everything on the record path is a relaxed atomic operation — no locks,
//! no allocation — so instrumenting a hot loop (cloaking, frame serving)
//! costs a handful of nanoseconds. Reads (quantiles, exposition) walk the
//! same atomics and may observe a torn-but-monotone view, which is fine
//! for monitoring.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can go up and down (queue depths, shard
/// populations, online flags).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (high-water
    /// marks).
    pub fn max_of(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets (see [`bucket_index`]).
pub const NUM_BUCKETS: usize = 252;

/// Maps a value to its bucket: values below 4 get exact buckets, larger
/// values land in one of four log-spaced sub-buckets per power of two
/// (relative bucket width ≤ 25%). Buckets are contiguous and ordered.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // e >= 2
    let sub = ((v >> (e - 2)) & 3) as usize;
    4 * e + sub - 4
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 4 {
        return (i as u64, i as u64);
    }
    let e = (i + 4) / 4;
    let s = ((i + 4) % 4) as u64;
    let width = 1u64 << (e - 2);
    let lower = (4 + s) << (e - 2);
    (lower, lower.saturating_add(width - 1))
}

/// A lock-free, log-bucketed histogram over `u64` values.
///
/// Records are two relaxed `fetch_add`s plus a store; quantile queries
/// walk the 252 buckets and return the *upper bound* of the bucket the
/// requested rank falls in (conservative for latencies, error ≤ 25%).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in integer nanoseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that rank; `0` on an empty histogram. Monotone in `q` by
    /// construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        // A racing writer bumped `count` before its bucket: report the
        // highest non-empty bucket.
        for i in (0..NUM_BUCKETS).rev() {
            if self.buckets[i].load(Ordering::Relaxed) > 0 {
                return bucket_bounds(i).1;
            }
        }
        0
    }

    /// `(p50, p95, p99)` in one call — the exposition's summary triple.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.max_of(10);
        g.max_of(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn buckets_are_contiguous_and_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn quantiles_on_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let (p50, p95, p99) = h.summary();
        // Upper-bound semantics: within 25% above the true quantile.
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!((95..=119).contains(&p95), "p95 = {p95}");
        assert!((99..=127).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(1.0) >= 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }
}
