//! The metrics registry: named metrics with labels, Prometheus-text
//! exposition, and a JSON snapshot for the bench harness.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// Label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    metrics: BTreeMap<MetricKey, Metric>,
    help: BTreeMap<String, &'static str>,
}

/// A collection of named metrics.
///
/// Registration (first lookup of a name/label combination) takes a write
/// lock; callers cache the returned `Arc` handle so the record path is
/// pure atomics. Looking up an existing metric takes a read lock.
///
/// Most code uses the process-wide registry via
/// [`crate::registry()`]; tests construct private instances.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<Arc<T>>>(
        &self,
        key: MetricKey,
        help: &'static str,
        make: F,
        cast: G,
    ) -> Arc<T> {
        if let Some(m) = self.inner.read().unwrap().metrics.get(&key) {
            return cast(m).unwrap_or_else(|| {
                panic!(
                    "metric `{}` already registered as a {}",
                    key.name,
                    m.type_name()
                )
            });
        }
        let mut inner = self.inner.write().unwrap();
        inner.help.entry(key.name.clone()).or_insert(help);
        let m = inner.metrics.entry(key).or_insert_with(make);
        let name = match m {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        };
        cast(m).unwrap_or_else(|| panic!("metric already registered as a {name}"))
    }

    /// The counter named `name` (no labels), registering it on first use.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// The counter named `name` with the given labels.
    pub fn counter_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.get_or_insert(
            make_key(name, labels),
            help,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge named `name` (no labels), registering it on first use.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// The gauge named `name` with the given labels.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.get_or_insert(
            make_key(name, labels),
            help,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram named `name` (no labels), registering it on first
    /// use.
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// The histogram named `name` with the given labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            make_key(name, labels),
            help,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (histograms as summaries with p50/p95/p99 quantiles).
    pub fn render(&self) -> String {
        let inner = self.inner.read().unwrap();
        let mut out = String::new();
        let mut last_name = "";
        for (key, metric) in &inner.metrics {
            if key.name != last_name {
                let help = inner.help.get(&key.name).copied().unwrap_or("");
                out.push_str(&format!("# HELP {} {}\n", key.name, help));
                out.push_str(&format!("# TYPE {} {}\n", key.name, metric.type_name()));
                last_name = &key.name;
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        label_str(&key.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        label_str(&key.labels, None),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let (p50, p95, p99) = h.summary();
                    for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            key.name,
                            label_str(&key.labels, Some(q)),
                            v
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        key.name,
                        label_str(&key.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        key.name,
                        label_str(&key.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Serialises every metric as a JSON object — the
    /// `BENCH_*.json`-compatible blob the bench harness writes after each
    /// figure run. Histograms appear as `{count, sum, p50, p95, p99}`.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.read().unwrap();
        let mut parts = Vec::new();
        for (key, metric) in &inner.metrics {
            let id = json_escape(&format!("{}{}", key.name, label_str(&key.labels, None)));
            match metric {
                Metric::Counter(c) => parts.push(format!("\"{id}\": {}", c.get())),
                Metric::Gauge(g) => parts.push(format!("\"{id}\": {}", g.get())),
                Metric::Histogram(h) => {
                    let (p50, p95, p99) = h.summary();
                    parts.push(format!(
                        "\"{id}\": {{\"count\": {}, \"sum\": {}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
                        h.count(),
                        h.sum()
                    ));
                }
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a `{k="v",...}` label block, optionally with a `quantile`
/// label appended; empty string when there are no labels at all.
fn label_str(labels: &Labels, quantile: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "\\\"")))
        .collect();
    if let Some(q) = quantile {
        pairs.push(format!("quantile=\"{q}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.gauge_with("load", "shard load", &[("shard", "0")]);
        let b = r.gauge_with("load", "shard load", &[("shard", "1")]);
        a.set(10);
        b.set(20);
        assert_eq!(a.get(), 10);
        assert_eq!(b.get(), 20);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    fn render_includes_all_series() {
        let r = Registry::new();
        r.counter("a_total", "as").add(3);
        r.gauge_with("b", "bs", &[("shard", "2")]).set(-1);
        r.histogram("lat_ns", "latency").observe(100);
        let text = r.render();
        assert!(text.contains("a_total 3"));
        assert!(text.contains("b{shard=\"2\"} -1"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_count 1"));
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a_total", "").add(3);
        r.histogram("h", "").observe(5);
        let json = r.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\": 3"));
        assert!(json.contains("\"count\": 1"));
    }
}
