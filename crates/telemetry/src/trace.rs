//! Lightweight pipeline tracing: trace ids, span records, and the flight
//! recorder.
//!
//! A *trace id* is minted once per end-to-end request at the
//! `Casper`/`RemoteCasper` entry point and carried through cloak → query →
//! transmission. Each stage records a [`TraceEvent`] (stage, duration,
//! outcome) into the in-memory ring-buffer **flight recorder**, whose last
//! N events can be dumped when something goes wrong — a degraded query, a
//! shard quarantine, a boot-id-change replay — giving an operator the
//! request's recent history without any always-on log volume.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Process-wide trace-id mint (monotone, never zero).
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One recorded span or event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotone event sequence number (assigned by the recorder).
    pub seq: u64,
    /// The request's trace id (`0` for events outside any request, e.g. a
    /// shard quarantine).
    pub trace_id: u64,
    /// Pipeline stage or subsystem (`"anonymizer"`, `"query"`,
    /// `"transmission"`, `"net"`, `"shard"`, ...).
    pub stage: &'static str,
    /// How the stage ended (`"ok"`, `"degraded"`, `"replay"`,
    /// `"quarantine"`, ...).
    pub outcome: &'static str,
    /// Stage duration (zero for instantaneous events).
    pub duration: Duration,
    /// Free-form context (error text, shard index, ...).
    pub detail: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:<6} trace={:<8} {:<14} {:<10} {:>10.1}us  {}",
            self.seq,
            self.trace_id,
            self.stage,
            self.outcome,
            self.duration.as_secs_f64() * 1e6,
            self.detail
        )
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    ring: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// Default flight-recorder capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// A bounded in-memory ring buffer of the most recent [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RecorderInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Records an event, evicting the oldest when full. The event's `seq`
    /// is assigned here.
    pub fn record(
        &self,
        trace_id: u64,
        stage: &'static str,
        outcome: &'static str,
        duration: Duration,
        detail: impl Into<String>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(TraceEvent {
            seq,
            trace_id,
            stage,
            outcome,
            duration,
            detail: detail.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// The retained events for one trace id, oldest first.
    pub fn dump_trace(&self, trace_id: u64) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .unwrap()
            .ring
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// A human-readable dump of the retained events.
    pub fn render(&self) -> String {
        let events = self.dump();
        let mut out = String::from("--- flight recorder dump (oldest first) ---\n");
        for e in &events {
            out.push_str(&format!("{e}\n"));
        }
        out.push_str(&format!("--- {} events ---\n", events.len()));
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(i, "stage", "ok", Duration::ZERO, format!("event {i}"));
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        // Oldest two evicted; seq strictly increasing.
        assert_eq!(dump[0].trace_id, 2);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn dump_trace_filters() {
        let fr = FlightRecorder::default();
        fr.record(7, "anonymizer", "ok", Duration::from_micros(3), "");
        fr.record(8, "query", "ok", Duration::ZERO, "");
        fr.record(7, "query", "degraded", Duration::ZERO, "io: timeout");
        let t7 = fr.dump_trace(7);
        assert_eq!(t7.len(), 2);
        assert!(t7.iter().all(|e| e.trace_id == 7));
        assert!(fr.render().contains("degraded"));
    }
}
