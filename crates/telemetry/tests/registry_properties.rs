//! Property, concurrency, and exposition tests for the telemetry
//! registry: bucket boundaries cover `u64` without gaps, quantiles are
//! monotone with bounded error, concurrent recording loses nothing, and
//! the Prometheus exposition is byte-stable.

use std::sync::Arc;
use std::thread;

use casper_telemetry::{bucket_bounds, bucket_index, Histogram, Registry, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_value_lands_inside_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "value {} outside bucket {} = [{}, {}]", v, i, lo, hi);
    }

    #[test]
    fn buckets_are_contiguous(i in 0usize..NUM_BUCKETS - 1) {
        let (_, hi) = bucket_bounds(i);
        let (lo_next, _) = bucket_bounds(i + 1);
        prop_assert_eq!(hi + 1, lo_next, "gap or overlap after bucket {}", i);
    }

    #[test]
    fn quantiles_are_monotone(
        values in prop::collection::vec(any::<u64>(), 1..200),
        qa in 0.0..=1.0f64,
        qb in 0.0..=1.0f64,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo_q) <= h.quantile(hi_q));
    }

    #[test]
    fn top_quantile_dominates_every_observation(
        values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let max = *values.iter().max().unwrap();
        prop_assert!(h.quantile(1.0) >= max);
    }

    #[test]
    fn quantile_error_is_within_25_percent(v in any::<u64>()) {
        // Upper-bound semantics: a single-value histogram reports its
        // bucket's upper bound for every quantile — never below the
        // value, never more than 25% above it.
        let h = Histogram::new();
        h.observe(v);
        let q = h.quantile(0.5);
        prop_assert!(q >= v);
        prop_assert!(
            q as u128 * 4 <= v as u128 * 5 + 16,
            "{} is more than 25% above {}", q, v
        );
    }
}

/// Eight threads hammer one counter, one gauge, and one histogram;
/// every recorded event must be visible afterwards — the registry's
/// lock-free claim, tested.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let registry = Registry::new();
    let c = registry.counter("ops_total", "operations");
    let g = registry.gauge("depth", "queue depth");
    let h = registry.histogram("latency_ns", "latency");
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let (c, g, h) = (Arc::clone(&c), Arc::clone(&g), Arc::clone(&h));
        joins.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                c.inc();
                g.add(1);
                h.observe(t * PER_THREAD + i);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let n = THREADS * PER_THREAD;
    assert_eq!(c.get(), n);
    assert_eq!(g.get(), n as i64);
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), n * (n - 1) / 2, "every observed value was summed");
    assert!(h.quantile(1.0) >= n - 1);
}

/// Golden test: the exposition output for a small fixed registry,
/// byte-for-byte. Guards scrape compatibility — HELP/TYPE blocks,
/// label ordering, quantile series, and the summary suffixes.
#[test]
fn exposition_golden() {
    let registry = Registry::new();
    registry
        .counter("casper_requests_total", "Requests served")
        .add(42);
    registry
        .gauge_with("casper_shard_users", "Users per shard", &[("shard", "0")])
        .set(17);
    let h = registry.histogram("casper_latency_ns", "Latency");
    for v in [1u64, 2, 3] {
        h.observe(v);
    }
    let expected = "\
# HELP casper_latency_ns Latency
# TYPE casper_latency_ns summary
casper_latency_ns{quantile=\"0.5\"} 2
casper_latency_ns{quantile=\"0.95\"} 3
casper_latency_ns{quantile=\"0.99\"} 3
casper_latency_ns_sum 6
casper_latency_ns_count 3
# HELP casper_requests_total Requests served
# TYPE casper_requests_total counter
casper_requests_total 42
# HELP casper_shard_users Users per shard
# TYPE casper_shard_users gauge
casper_shard_users{shard=\"0\"} 17
";
    assert_eq!(registry.render(), expected);
}
