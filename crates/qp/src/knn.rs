//! Private k-nearest-neighbour queries — the generalisation of
//! Algorithm 2 the paper describes as a straightforward extension
//! (Section 5: "extensions of the proposed approaches to other
//! location-based spatio-temporal queries ... are straightforward").
//!
//! # Construction
//!
//! For each corner `v_i` of the cloaked region we compute a radius `r_i`
//! such that **at least `k` targets lie within `r_i` of `v_i`**:
//!
//! * with four filters, `r_i` is the distance to the k-th nearest target
//!   of `v_i` itself;
//! * with one/two filters, `r_i = dist(v_i, a) + r_a` for the best anchor
//!   `a` (centre, or two opposite corners) — the k targets within `r_a`
//!   of `a` are within that radius of `v_i` by the triangle inequality.
//!
//! Then for any point `p` on the edge `v_i v_j` (length `L`, offset `t`
//! from `v_i`), at least `k` targets lie within
//! `f(t) = min(t + r_i, L - t + r_j)`, so `p`'s k-th NN distance is at
//! most `f(t)`. The edge expansion is `max_t f(t)`:
//!
//! * `(L + r_i + r_j) / 2` when the two lines cross inside the edge,
//! * `L + min(r_i, r_j)` when one endpoint's bound dominates throughout.
//!
//! Expanding every side by its bound yields an `A_EXT` whose range query
//! provably contains the exact k nearest targets of *every* possible user
//! position in the region (tested by property tests). For `k = 1` this is
//! slightly looser than Algorithm 2's bisector construction — the
//! bisector exploits *which* target is the filter, which has no k-NN
//! analogue — so [`crate::private_nn_public_data`] remains the NN entry
//! point.

use casper_geometry::{Point, Rect};
use casper_index::{DistanceKind, SpatialIndex};

use crate::{everywhere, CandidateList, FilterCount};

/// Radius around `anchor` guaranteed to contain at least `k` targets,
/// under the given distance semantics; `None` when fewer than `k` targets
/// exist.
fn kth_radius<I: SpatialIndex>(
    index: &I,
    anchor: Point,
    k: usize,
    kind: DistanceKind,
) -> Option<f64> {
    let nn = index.k_nearest(anchor, k, kind);
    if nn.len() < k {
        return None;
    }
    Some(nn.last().expect("k >= 1").dist)
}

/// Per-corner radii `r_i` such that ≥ k targets lie within `r_i` of
/// corner `i`, plus the `(anchor, k-th radius)` pairs the searches
/// actually ran at — an insertion inside an anchor circle changes that
/// anchor's k-th radius, so the circles join the dependency region.
#[allow(clippy::type_complexity)]
fn corner_radii<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    k: usize,
    filters: FilterCount,
    kind: DistanceKind,
) -> Option<([f64; 4], Vec<(Point, f64)>)> {
    let corners = region.corners();
    match filters {
        FilterCount::Four => {
            let mut r = [0.0; 4];
            for (i, c) in corners.iter().enumerate() {
                r[i] = kth_radius(index, *c, k, kind)?;
            }
            Some((r, (0..4).map(|i| (corners[i], r[i])).collect()))
        }
        FilterCount::Two => {
            let anchors = [corners[0], corners[2]];
            let radii = [
                kth_radius(index, anchors[0], k, kind)?,
                kth_radius(index, anchors[1], k, kind)?,
            ];
            let mut r = [0.0; 4];
            for (i, c) in corners.iter().enumerate() {
                r[i] = (0..2)
                    .map(|a| c.dist(anchors[a]) + radii[a])
                    .fold(f64::INFINITY, f64::min);
            }
            Some((r, vec![(anchors[0], radii[0]), (anchors[1], radii[1])]))
        }
        FilterCount::One => {
            let center = region.center();
            let rc = kth_radius(index, center, k, kind)?;
            let mut r = [0.0; 4];
            for (i, c) in corners.iter().enumerate() {
                r[i] = c.dist(center) + rc;
            }
            Some((r, vec![(center, rc)]))
        }
    }
}

/// Dependency region: `a_ext` united with every anchor circle's bbox.
fn dep_of(a_ext: &Rect, anchors: &[(Point, f64)]) -> Rect {
    let mut dep = *a_ext;
    for &(p, r) in anchors {
        dep = dep.union(&Rect::from_coords(p.x - r, p.y - r, p.x + r, p.y + r));
    }
    dep
}

/// `max_t min(t + r_i, L - t + r_j)` over `t in [0, L]`.
fn edge_bound(len: f64, r_i: f64, r_j: f64) -> f64 {
    let crossing = (len + r_j - r_i) / 2.0;
    if crossing <= 0.0 {
        // r_i dominates: the j-line is below everywhere; max at t = 0.
        len + r_j.min(r_i)
    } else if crossing >= len {
        len + r_i.min(r_j)
    } else {
        (len + r_i + r_j) / 2.0
    }
}

fn extended_area_knn(region: &Rect, radii: &[f64; 4]) -> Rect {
    let mut a_ext = *region;
    for (idx, (side, edge)) in region.edges().iter().enumerate() {
        let (i, j) = (idx, (idx + 1) % 4);
        let bound = edge_bound(edge.length(), radii[i], radii[j]);
        a_ext = a_ext.expand_side(*side, bound);
    }
    a_ext
}

/// A private k-NN query over **public** (exact point) target data.
///
/// The candidate list contains the exact `k` nearest targets of every
/// possible user position inside `region`; the client refines locally.
/// When fewer than `k` targets exist, all of them are returned.
pub fn private_knn_public_data<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    k: usize,
    filters: FilterCount,
) -> CandidateList {
    let k = k.max(1);
    let Some((radii, anchors)) = corner_radii(index, region, k, filters, DistanceKind::Min) else {
        // Fewer than k targets in total: everything is a candidate, and
        // any insertion anywhere changes the answer.
        let all = index.range(&everywhere());
        return CandidateList::from_parts(all, *region, Vec::new(), everywhere());
    };
    let a_ext = extended_area_knn(region, &radii);
    let dep = dep_of(&a_ext, &anchors);
    CandidateList::from_parts(index.range(&a_ext), a_ext, Vec::new(), dep)
}

/// A private k-NN query over **private** (cloaked rectangle) target
/// data: radii use the pessimistic furthest-corner distance, candidates
/// are the regions overlapping `A_EXT`.
pub fn private_knn_private_data<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    k: usize,
    filters: FilterCount,
) -> CandidateList {
    let k = k.max(1);
    let Some((radii, anchors)) = corner_radii(index, region, k, filters, DistanceKind::Max) else {
        let all = index.range(&everywhere());
        return CandidateList::from_parts(all, *region, Vec::new(), everywhere());
    };
    let a_ext = extended_area_knn(region, &radii);
    let dep = dep_of(&a_ext, &anchors);
    CandidateList::from_parts(index.range(&a_ext), a_ext, Vec::new(), dep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_index::{BruteForce, Entry, ObjectId};

    fn pt(id: u64, x: f64, y: f64) -> Entry {
        Entry::point(ObjectId(id), Point::new(x, y))
    }

    fn grid_index(n_per_axis: u64) -> BruteForce {
        let step = 1.0 / n_per_axis as f64;
        BruteForce::from_entries((0..n_per_axis * n_per_axis).map(|i| {
            pt(
                i,
                (i % n_per_axis) as f64 * step + step / 2.0,
                (i / n_per_axis) as f64 * step + step / 2.0,
            )
        }))
    }

    #[test]
    fn edge_bound_crossing_inside() {
        // Symmetric radii: crossing at the middle.
        assert!((edge_bound(1.0, 0.2, 0.2) - 0.7).abs() < 1e-12);
        // Asymmetric but still crossing inside.
        assert!((edge_bound(1.0, 0.1, 0.5) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn edge_bound_dominated_ends() {
        // r_i huge: the j bound rules the whole edge; max at t = 0.
        assert!((edge_bound(1.0, 9.0, 0.3) - 1.3).abs() < 1e-12);
        // r_j huge symmetric case.
        assert!((edge_bound(1.0, 0.3, 9.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn edge_bound_dominates_pointwise_min() {
        // The returned bound is an upper bound of f(t) everywhere.
        for (l, ri, rj) in [(1.0, 0.2, 0.7), (0.3, 1.0, 0.1), (2.0, 0.0, 0.0)] {
            let b = edge_bound(l, ri, rj);
            for step in 0..=100 {
                let t = l * step as f64 / 100.0;
                let f = (t + ri).min(l - t + rj);
                assert!(f <= b + 1e-12, "f({t})={f} > bound {b}");
            }
        }
    }

    #[test]
    fn knn_candidates_contain_all_k_nearest() {
        let idx = grid_index(20); // 400 targets
        let region = Rect::from_coords(0.42, 0.38, 0.58, 0.55);
        for k in [1usize, 3, 10] {
            for fc in FilterCount::ALL {
                let list = private_knn_public_data(&idx, &region, k, fc);
                // For several user positions, the k nearest must be in
                // the candidate list.
                for (ux, uy) in [(0.42, 0.38), (0.58, 0.55), (0.5, 0.47), (0.42, 0.55)] {
                    let user = Point::new(ux, uy);
                    let knn = idx.k_nearest(user, k, DistanceKind::Min);
                    for nb in &knn {
                        assert!(
                            list.candidates.iter().any(|c| c.id == nb.entry.id),
                            "k={k} {fc:?}: {} missing for user {user:?}",
                            nb.entry.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_larger_than_population_returns_everything() {
        let idx = grid_index(3); // 9 targets
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let list = private_knn_public_data(&idx, &region, 50, FilterCount::Four);
        assert_eq!(list.len(), 9);
    }

    #[test]
    fn candidate_count_grows_with_k() {
        let idx = grid_index(30);
        let region = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
        let sizes: Vec<usize> = [1usize, 5, 20]
            .iter()
            .map(|&k| private_knn_public_data(&idx, &region, k, FilterCount::Four).len())
            .collect();
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
    }

    #[test]
    fn four_filters_tightest() {
        let idx = grid_index(30);
        let region = Rect::from_coords(0.3, 0.3, 0.5, 0.5);
        let a1 = private_knn_public_data(&idx, &region, 5, FilterCount::One).a_ext;
        let a4 = private_knn_public_data(&idx, &region, 5, FilterCount::Four).a_ext;
        // One-filter radii are anchor-relayed, hence never smaller.
        assert!(a1.area() >= a4.area() - 1e-12);
    }

    #[test]
    fn private_data_knn_includes_enough_regions() {
        let regions: Vec<Entry> = (0..25)
            .map(|i| {
                let x = (i % 5) as f64 / 5.0;
                let y = (i / 5) as f64 / 5.0;
                Entry::new(ObjectId(i), Rect::from_coords(x, y, x + 0.1, y + 0.1))
            })
            .collect();
        let idx = BruteForce::from_entries(regions.iter().copied());
        let query = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
        let list = private_knn_private_data(&idx, &query, 4, FilterCount::Four);
        assert!(list.len() >= 4, "must ship at least k candidate regions");
    }
}
