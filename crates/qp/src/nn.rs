//! Private nearest-neighbour queries (Sections 5.1 and 5.2): filter →
//! middle point → extended area → candidate list.

use casper_geometry::Rect;
use casper_index::{Entry, SpatialIndex};

use crate::{
    assign_filters_private, assign_filters_public, extended_area_private, extended_area_public,
    CandidateList, FilterCount, PrivateBoundMode,
};

/// Algorithm 2: a private nearest-neighbour query over **public** (exact
/// point) target data.
///
/// `region` is the cloaked area received from the location anonymizer; the
/// caller never supplies — and this function never sees — the exact user
/// position. The returned candidate list is *inclusive* (contains the
/// exact NN of every possible user position inside `region`, Theorem 1)
/// and *minimal* for the chosen filters (Theorem 2). The client evaluates
/// the final answer locally.
///
/// ```
/// use casper_geometry::{Point, Rect};
/// use casper_index::{BruteForce, Entry, ObjectId};
/// use casper_qp::{private_nn_public_data, FilterCount};
///
/// let stations = BruteForce::from_entries([
///     Entry::point(ObjectId(1), Point::new(0.2, 0.2)),
///     Entry::point(ObjectId(2), Point::new(0.8, 0.8)),
/// ]);
/// let cloaked = Rect::from_coords(0.1, 0.1, 0.3, 0.3);
/// let list = private_nn_public_data(&stations, &cloaked, FilterCount::Four);
/// // The exact NN of anyone inside the region is in the list.
/// assert!(list.candidates.iter().any(|e| e.id == ObjectId(1)));
/// ```
pub fn private_nn_public_data<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    filters: FilterCount,
) -> CandidateList {
    let Some(vf) = assign_filters_public(index, region, filters) else {
        #[cfg(feature = "telemetry")]
        crate::tel::record_candidates_public(0);
        return CandidateList::empty(region);
    };
    let a_ext = extended_area_public(region, &vf);
    let candidates = index.range(&a_ext);
    debug_assert!(
        vf.distinct
            .iter()
            .all(|f| candidates.iter().any(|c| c.id == f.id)),
        "filters lie within their own bounding circles, so A_EXT must contain them"
    );
    #[cfg(feature = "telemetry")]
    crate::tel::record_candidates_public(candidates.len());
    let dep = vf.dep_with(&a_ext);
    CandidateList::from_parts(candidates, a_ext, vf.distinct, dep)
}

/// The Section 5.2 variant: a private nearest-neighbour query over
/// **private** target data, each target being a cloaked rectangle.
///
/// `min_overlap` implements the probabilistic refinement of Step 4:
/// only targets with more than this fraction of their cloaked area
/// overlapping `A_EXT` are returned (`0.0` keeps every overlapping target,
/// which is the inclusive default; larger values trade inclusiveness for a
/// smaller candidate list, as discussed in the paper).
pub fn private_nn_private_data<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    filters: FilterCount,
    mode: PrivateBoundMode,
    min_overlap: f64,
) -> CandidateList {
    let Some(vf) = assign_filters_private(index, region, filters) else {
        #[cfg(feature = "telemetry")]
        crate::tel::record_candidates_private(0);
        return CandidateList::empty(region);
    };
    let a_ext = extended_area_private(region, &vf, mode);
    let mut candidates: Vec<Entry> = index.range(&a_ext);
    if min_overlap > 0.0 {
        candidates.retain(|e| e.mbr.overlap_fraction(&a_ext) >= min_overlap);
    }
    #[cfg(feature = "telemetry")]
    crate::tel::record_candidates_private(candidates.len());
    let dep = vf.dep_with(&a_ext);
    CandidateList::from_parts(candidates, a_ext, vf.distinct, dep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::{BruteForce, ObjectId, RTree, UniformGrid};

    fn pt(id: u64, x: f64, y: f64) -> Entry {
        Entry::point(ObjectId(id), Point::new(x, y))
    }

    /// The running example of Figure 4/5: 32 targets on a grid, cloaked
    /// region in the middle-left, exact answer T13.
    fn paper_like_setup() -> (Vec<Entry>, Rect, Point) {
        // An 8x4 grid of targets (ids 1..=32 like T1..T32).
        let mut targets = Vec::new();
        let mut id = 1u64;
        for row in 0..4 {
            for col in 0..8 {
                targets.push(pt(id, 0.06 + col as f64 * 0.125, 0.1 + row as f64 * 0.25));
                id += 1;
            }
        }
        // Cloaked region between two target columns.
        let region = Rect::from_coords(0.33, 0.32, 0.48, 0.45);
        let user = Point::new(0.45, 0.43); // true position (never sent)
        (targets, region, user)
    }

    fn exact_nn(targets: &[Entry], p: Point) -> ObjectId {
        targets
            .iter()
            .min_by(|a, b| a.mbr.min_dist(p).total_cmp(&b.mbr.min_dist(p)))
            .unwrap()
            .id
    }

    #[test]
    fn candidate_list_contains_exact_answer() {
        let (targets, region, user) = paper_like_setup();
        let idx = BruteForce::from_entries(targets.iter().copied());
        for fc in FilterCount::ALL {
            let list = private_nn_public_data(&idx, &region, fc);
            let exact = exact_nn(&targets, user);
            assert!(
                list.candidates.iter().any(|e| e.id == exact),
                "{fc:?}: exact answer missing from candidate list"
            );
        }
    }

    #[test]
    fn candidate_list_is_much_smaller_than_all_targets() {
        let (targets, region, _) = paper_like_setup();
        let idx = BruteForce::from_entries(targets.iter().copied());
        let list = private_nn_public_data(&idx, &region, FilterCount::Four);
        assert!(
            list.len() < targets.len() / 2,
            "4-filter candidate list ({}) should prune most of the {} targets",
            list.len(),
            targets.len()
        );
    }

    #[test]
    fn more_filters_never_worse_on_this_workload() {
        let (targets, region, _) = paper_like_setup();
        let idx = BruteForce::from_entries(targets.iter().copied());
        let one = private_nn_public_data(&idx, &region, FilterCount::One).len();
        let two = private_nn_public_data(&idx, &region, FilterCount::Two).len();
        let four = private_nn_public_data(&idx, &region, FilterCount::Four).len();
        assert!(
            four <= two && two <= one,
            "{four} <= {two} <= {one} expected"
        );
    }

    #[test]
    fn all_indexes_agree_on_candidates() {
        let (targets, region, _) = paper_like_setup();
        let brute = BruteForce::from_entries(targets.iter().copied());
        let rtree = RTree::bulk_load(targets.iter().copied());
        let mut grid = UniformGrid::new(8);
        for t in &targets {
            grid.insert(*t);
        }
        let ids = |l: &CandidateList| {
            let mut v: Vec<u64> = l.candidates.iter().map(|e| e.id.0).collect();
            v.sort_unstable();
            v
        };
        let a = ids(&private_nn_public_data(&brute, &region, FilterCount::Four));
        let b = ids(&private_nn_public_data(&rtree, &region, FilterCount::Four));
        let c = ids(&private_nn_public_data(&grid, &region, FilterCount::Four));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_index_returns_empty_list() {
        let idx = BruteForce::new();
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let list = private_nn_public_data(&idx, &region, FilterCount::Four);
        assert!(list.is_empty());
        assert!(list.filters.is_empty());
        let list = private_nn_private_data(
            &idx,
            &region,
            FilterCount::Four,
            PrivateBoundMode::Safe,
            0.0,
        );
        assert!(list.is_empty());
    }

    #[test]
    fn private_data_candidates_include_true_nearest_region() {
        // Targets are cloaked rectangles; the true NN (by any position
        // inside its region) must appear in the candidate list.
        let targets = [
            Entry::new(ObjectId(1), Rect::from_coords(0.10, 0.10, 0.20, 0.20)),
            Entry::new(ObjectId(2), Rect::from_coords(0.55, 0.50, 0.65, 0.60)),
            Entry::new(ObjectId(3), Rect::from_coords(0.80, 0.85, 0.95, 0.95)),
            Entry::new(ObjectId(4), Rect::from_coords(0.05, 0.80, 0.15, 0.90)),
        ];
        let idx = BruteForce::from_entries(targets.iter().copied());
        let region = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
        let list = private_nn_private_data(
            &idx,
            &region,
            FilterCount::Four,
            PrivateBoundMode::Safe,
            0.0,
        );
        // Target 2 is clearly nearest wherever the user is in the region.
        assert!(list.candidates.iter().any(|e| e.id == ObjectId(2)));
    }

    #[test]
    fn overlap_threshold_prunes_fringe_candidates() {
        let targets = [
            // Mostly inside any reasonable A_EXT.
            Entry::new(ObjectId(1), Rect::from_coords(0.45, 0.45, 0.55, 0.55)),
            // A huge region that barely grazes the search area.
            Entry::new(ObjectId(2), Rect::from_coords(0.0, 0.0, 2.0, 0.46)),
        ];
        let idx = BruteForce::from_entries(targets.iter().copied());
        let region = Rect::from_coords(0.48, 0.48, 0.52, 0.52);
        let all =
            private_nn_private_data(&idx, &region, FilterCount::One, PrivateBoundMode::Safe, 0.0);
        let pruned =
            private_nn_private_data(&idx, &region, FilterCount::One, PrivateBoundMode::Safe, 0.5);
        assert!(all.len() >= pruned.len());
        assert!(pruned.candidates.iter().any(|e| e.id == ObjectId(1)));
    }

    #[test]
    fn a_ext_contains_region_and_filters() {
        let (targets, region, _) = paper_like_setup();
        let idx = BruteForce::from_entries(targets.iter().copied());
        for fc in FilterCount::ALL {
            let list = private_nn_public_data(&idx, &region, fc);
            assert!(list.a_ext.contains_rect(&region));
            for f in &list.filters {
                assert!(
                    list.a_ext.intersects(&f.mbr),
                    "{fc:?}: filter {} outside A_EXT",
                    f.id
                );
            }
        }
    }
}
