//! Step 1 of Algorithm 2: selecting the *filter* target objects.
//!
//! The paper's evaluation (Section 6.2) compares three variants:
//!
//! * **four filters** — the nearest target to each corner of the cloaked
//!   region (Algorithm 2 as written);
//! * **two filters** — the nearest targets to two opposite corners;
//! * **one filter** — the nearest target to the region's centre.
//!
//! "Notice that all the theorems and proofs in Section 5 are valid for the
//! three cases": the extended-area step only requires that *some* filter is
//! assigned to each corner; fewer filters simply produce looser bounds and
//! a larger candidate list.
//!
//! For private (cloaked) target data the nearest-filter search uses the
//! pessimistic furthest-corner distance (Section 5.2 Step 1).

use casper_geometry::{Point, Rect};
use casper_index::{DistanceKind, Entry, SpatialIndex};

/// Number of filter objects used in Step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterCount {
    /// Nearest target to the region centre.
    One,
    /// Nearest targets to two opposite corners (bottom-left, top-right).
    Two,
    /// Nearest target to each of the four corners.
    Four,
}

impl FilterCount {
    /// All variants, in increasing filter count.
    pub const ALL: [FilterCount; 3] = [FilterCount::One, FilterCount::Two, FilterCount::Four];

    /// The number of nearest-neighbour searches this variant performs.
    pub fn searches(self) -> usize {
        match self {
            FilterCount::One => 1,
            FilterCount::Two => 2,
            FilterCount::Four => 4,
        }
    }
}

/// The filter assignment for the four corners of a cloaked region, in
/// [`Rect::corners`] order, plus the distinct filter objects themselves.
#[derive(Debug, Clone)]
pub struct VertexFilters {
    /// `per_corner[i]` is the filter object assigned to corner `i`.
    pub per_corner: [Entry; 4],
    /// The distinct filter objects (1, 2 or 4 entries).
    pub distinct: Vec<Entry>,
    /// The nearest-neighbour search anchors that produced the filters —
    /// `(anchor point, distance to its filter)` under the search's
    /// distance semantics. A target mutation inside one of these circles
    /// can change the filter assignment (and with it `A_EXT`), so they
    /// are part of the answer's dependency region.
    pub anchors: Vec<(Point, f64)>,
}

impl VertexFilters {
    /// The dependency region of an answer computed from these filters:
    /// `a_ext` united with the bounding box of every anchor circle.
    pub fn dep_with(&self, a_ext: &Rect) -> Rect {
        let mut dep = *a_ext;
        for &(p, r) in &self.anchors {
            dep = dep.union(&Rect::from_coords(p.x - r, p.y - r, p.x + r, p.y + r));
        }
        dep
    }
}

fn assign<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    count: FilterCount,
    kind: DistanceKind,
) -> Option<VertexFilters> {
    if index.is_empty() {
        return None;
    }
    let corners = region.corners();
    match count {
        FilterCount::One => {
            let center = region.center();
            let n = index.nearest(center, kind)?;
            let f = n.entry;
            Some(VertexFilters {
                per_corner: [f; 4],
                distinct: vec![f],
                anchors: vec![(center, n.dist)],
            })
        }
        FilterCount::Two => {
            // Two reverse corners: bottom-left (0) and top-right (2).
            let n0 = index.nearest(corners[0], kind)?;
            let n2 = index.nearest(corners[2], kind)?;
            let (f0, f2) = (n0.entry, n2.entry);
            // The remaining corners take whichever of the two is nearer
            // under the same distance semantics.
            let pick = |i: usize| -> Entry {
                if kind.measure(corners[i], &f0.mbr) <= kind.measure(corners[i], &f2.mbr) {
                    f0
                } else {
                    f2
                }
            };
            let distinct = if f0.id == f2.id {
                vec![f0]
            } else {
                vec![f0, f2]
            };
            Some(VertexFilters {
                per_corner: [f0, pick(1), f2, pick(3)],
                distinct,
                anchors: vec![(corners[0], n0.dist), (corners[2], n2.dist)],
            })
        }
        FilterCount::Four => {
            let neighbors = [
                index.nearest(corners[0], kind)?,
                index.nearest(corners[1], kind)?,
                index.nearest(corners[2], kind)?,
                index.nearest(corners[3], kind)?,
            ];
            let per_corner = [
                neighbors[0].entry,
                neighbors[1].entry,
                neighbors[2].entry,
                neighbors[3].entry,
            ];
            let mut distinct: Vec<Entry> = Vec::with_capacity(4);
            for f in per_corner {
                if !distinct.iter().any(|d| d.id == f.id) {
                    distinct.push(f);
                }
            }
            let anchors = (0..4).map(|i| (corners[i], neighbors[i].dist)).collect();
            Some(VertexFilters {
                per_corner,
                distinct,
                anchors,
            })
        }
    }
}

/// Selects filters for a private query over **public** (exact point) data.
///
/// Returns `None` when the index holds no targets.
pub fn assign_filters_public<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    count: FilterCount,
) -> Option<VertexFilters> {
    assign(index, region, count, DistanceKind::Min)
}

/// Selects filters for a private query over **private** (cloaked
/// rectangle) data, measuring distance to the furthest corner of each
/// candidate region (Section 5.2 Step 1).
pub fn assign_filters_private<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    count: FilterCount,
) -> Option<VertexFilters> {
    assign(index, region, count, DistanceKind::Max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::{BruteForce, ObjectId};

    fn pt(id: u64, x: f64, y: f64) -> Entry {
        Entry::point(ObjectId(id), Point::new(x, y))
    }

    fn index_with(targets: &[Entry]) -> BruteForce {
        BruteForce::from_entries(targets.iter().copied())
    }

    #[test]
    fn empty_index_yields_none() {
        let idx = BruteForce::new();
        let r = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        assert!(assign_filters_public(&idx, &r, FilterCount::Four).is_none());
    }

    #[test]
    fn four_filters_are_per_corner_nearest() {
        // One target near each corner of the region.
        let targets = [
            pt(0, 0.1, 0.1),
            pt(1, 0.9, 0.1),
            pt(2, 0.9, 0.9),
            pt(3, 0.1, 0.9),
        ];
        let idx = index_with(&targets);
        let r = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let f = assign_filters_public(&idx, &r, FilterCount::Four).unwrap();
        assert_eq!(f.per_corner[0].id, ObjectId(0));
        assert_eq!(f.per_corner[1].id, ObjectId(1));
        assert_eq!(f.per_corner[2].id, ObjectId(2));
        assert_eq!(f.per_corner[3].id, ObjectId(3));
        assert_eq!(f.distinct.len(), 4);
    }

    #[test]
    fn four_filters_deduplicate_shared_targets() {
        let targets = [pt(0, 0.5, 0.5)];
        let idx = index_with(&targets);
        let r = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let f = assign_filters_public(&idx, &r, FilterCount::Four).unwrap();
        assert_eq!(f.distinct.len(), 1);
        assert!(f.per_corner.iter().all(|e| e.id == ObjectId(0)));
    }

    #[test]
    fn one_filter_uses_center() {
        let targets = [pt(0, 0.5, 0.52), pt(1, 0.0, 0.0)];
        let idx = index_with(&targets);
        let r = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let f = assign_filters_public(&idx, &r, FilterCount::One).unwrap();
        assert_eq!(f.distinct.len(), 1);
        assert_eq!(f.distinct[0].id, ObjectId(0));
    }

    #[test]
    fn two_filters_assign_remaining_corners_to_nearer() {
        let targets = [pt(0, 0.0, 0.0), pt(1, 1.0, 1.0)];
        let idx = index_with(&targets);
        let r = Rect::from_coords(0.2, 0.2, 0.8, 0.8);
        let f = assign_filters_public(&idx, &r, FilterCount::Two).unwrap();
        assert_eq!(f.per_corner[0].id, ObjectId(0)); // bottom-left
        assert_eq!(f.per_corner[2].id, ObjectId(1)); // top-right
                                                     // Symmetric setup: corners 1 and 3 are equidistant; either filter
                                                     // is a valid assignment.
        assert_eq!(f.distinct.len(), 2);
    }

    #[test]
    fn private_filters_use_furthest_corner_distance() {
        // Target 0 is a wide region whose far corner is distant; target 1
        // is a point slightly further by min-dist but closer by max-dist.
        let targets = [
            Entry::new(ObjectId(0), Rect::from_coords(0.3, 0.5, 1.0, 0.5)),
            pt(1, 0.35, 0.5),
        ];
        let idx = index_with(&targets);
        let r = Rect::from_coords(0.0, 0.4, 0.2, 0.6);
        let f = assign_filters_private(&idx, &r, FilterCount::One).unwrap();
        assert_eq!(f.distinct[0].id, ObjectId(1));
        let f_pub = assign_filters_public(&idx, &r, FilterCount::One).unwrap();
        assert_eq!(f_pub.distinct[0].id, ObjectId(0));
    }

    #[test]
    fn searches_counts() {
        assert_eq!(FilterCount::One.searches(), 1);
        assert_eq!(FilterCount::Two.searches(), 2);
        assert_eq!(FilterCount::Four.searches(), 4);
    }
}
