//! Telemetry probes for the query processor (compiled only with the
//! `telemetry` feature).

use std::sync::{Arc, OnceLock};

use casper_telemetry::{registry, Histogram};

/// Records the size of a candidate list produced for public target data.
pub(crate) fn record_candidates_public(len: usize) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram_with(
            "casper_qp_candidates",
            "Candidate-list sizes returned by the privacy-aware query processor",
            &[("data", "public")],
        )
    })
    .observe(len as u64);
}

/// Counts candidate-cache outcomes (`hit` / `miss` / `stale` /
/// `eviction`) in the process-wide registry.
#[cfg(feature = "qp-cache")]
pub(crate) fn record_cache_event(outcome: &'static str) {
    use casper_telemetry::Counter;
    static HIT: OnceLock<Arc<Counter>> = OnceLock::new();
    static MISS: OnceLock<Arc<Counter>> = OnceLock::new();
    static STALE: OnceLock<Arc<Counter>> = OnceLock::new();
    static EVICTION: OnceLock<Arc<Counter>> = OnceLock::new();
    let cell = match outcome {
        "hit" => &HIT,
        "miss" => &MISS,
        "stale" => &STALE,
        _ => &EVICTION,
    };
    cell.get_or_init(|| {
        registry().counter_with(
            "casper_qp_cache_events",
            "Candidate-cache lookup and maintenance outcomes",
            &[("outcome", outcome)],
        )
    })
    .inc();
}

/// Records the size of a candidate list produced for private target data.
pub(crate) fn record_candidates_private(len: usize) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram_with(
            "casper_qp_candidates",
            "Candidate-list sizes returned by the privacy-aware query processor",
            &[("data", "private")],
        )
    })
    .observe(len as u64);
}
