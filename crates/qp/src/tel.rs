//! Telemetry probes for the query processor (compiled only with the
//! `telemetry` feature).

use std::sync::{Arc, OnceLock};

use casper_telemetry::{registry, Histogram};

/// Records the size of a candidate list produced for public target data.
pub(crate) fn record_candidates_public(len: usize) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram_with(
            "casper_qp_candidates",
            "Candidate-list sizes returned by the privacy-aware query processor",
            &[("data", "public")],
        )
    })
    .observe(len as u64);
}

/// Records the size of a candidate list produced for private target data.
pub(crate) fn record_candidates_private(len: usize) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram_with(
            "casper_qp_candidates",
            "Candidate-list sizes returned by the privacy-aware query processor",
            &[("data", "private")],
        )
    })
    .observe(len as u64);
}
