//! Range and aggregate queries.
//!
//! * **Public queries over private data** — "how many cars in this area?".
//!   The query region is exactly known; the data are cloaked rectangles.
//!   The paper treats this as a special case of Section 5.2 where the query
//!   area needs no extension; the interesting part is interpreting partial
//!   overlaps, for which we provide both an exact candidate list and the
//!   probabilistic estimate the paper's uniformity guarantee justifies
//!   (Section 4.3: an adversary — or the server — can only assume a user
//!   is uniformly distributed over her cloaked region, so a region
//!   overlapping the query by fraction `f` contributes `f` expected users).
//! * **Private range queries over public data** — "which gas stations are
//!   within distance r of me?". The paper calls this extension
//!   "straightforward" (Section 5): any target within `r` of *any* point of
//!   the cloaked region may be the answer, so the candidate list is the
//!   range query over the region expanded uniformly by `r`; inclusiveness
//!   is immediate and minimality follows because every point of the
//!   expanded area is within `r` of some possible user position.

use casper_geometry::Rect;
use casper_index::{Entry, SpatialIndex};

use crate::CandidateList;

/// Answer to a public range/count query over private (cloaked) data.
#[derive(Debug, Clone)]
pub struct RangeAnswer {
    /// Cloaked regions overlapping the query area at all.
    pub overlapping: Vec<Entry>,
    /// Regions entirely inside the query area — definite members.
    pub definite: usize,
    /// Expected number of users in the area under the uniformity
    /// assumption: sum of per-region overlap fractions.
    pub expected_count: f64,
}

impl RangeAnswer {
    /// Derives the aggregate interpretation (definite members, expected
    /// count) of an already-computed overlap list against `query`. This
    /// is the one place the partial-overlap semantics live, shared by
    /// the direct path and the candidate-cache path.
    pub fn from_overlapping(overlapping: Vec<Entry>, query: &Rect) -> Self {
        let mut definite = 0usize;
        let mut expected = 0.0f64;
        for e in &overlapping {
            if query.contains_rect(&e.mbr) {
                definite += 1;
            }
            expected += e.mbr.overlap_fraction(query);
        }
        RangeAnswer {
            overlapping,
            definite,
            expected_count: expected,
        }
    }

    /// Upper bound on the true count: every overlapping region *may*
    /// contribute its user.
    pub fn max_count(&self) -> usize {
        self.overlapping.len()
    }

    /// Lower bound on the true count: only fully-contained regions are
    /// certain.
    pub fn min_count(&self) -> usize {
        self.definite
    }
}

/// A public (administrator) range query over private data: the query
/// rectangle is exact, the stored objects are cloaked regions.
pub fn public_range_over_private<I: SpatialIndex>(index: &I, query: &Rect) -> RangeAnswer {
    RangeAnswer::from_overlapping(index.range(query), query)
}

/// A private range query ("targets within `radius` of me") over public
/// point data, asked from a cloaked `region`.
///
/// The candidate list contains every target that is within `radius` of
/// *some* point of the region; the client keeps those within `radius` of
/// her true position.
pub fn private_range_public_data<I: SpatialIndex>(
    index: &I,
    region: &Rect,
    radius: f64,
) -> CandidateList {
    let a_ext = region.expand_uniform(radius.max(0.0));
    // The expanded rectangle over-approximates the true stadium-shaped
    // union of discs only at its four corners; filter those out with the
    // exact min-distance test to keep the list minimal.
    let candidates: Vec<Entry> = index
        .range(&a_ext)
        .into_iter()
        .filter(|e| region.min_dist(e.mbr.center()) <= radius || e.mbr.intersects(region))
        .collect();
    // No filter search here: membership depends only on geometry inside
    // `a_ext`, so that is the whole dependency region.
    CandidateList::from_parts(candidates, a_ext, Vec::new(), a_ext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::{BruteForce, ObjectId};

    fn region(id: u64, x0: f64, y0: f64, x1: f64, y1: f64) -> Entry {
        Entry::new(ObjectId(id), Rect::from_coords(x0, y0, x1, y1))
    }

    #[test]
    fn public_range_counts_bounds_and_expectation() {
        let data = [
            region(1, 0.1, 0.1, 0.2, 0.2),     // fully inside
            region(2, 0.25, 0.25, 0.45, 0.45), // half overlapping (area-wise)
            region(3, 0.8, 0.8, 0.9, 0.9),     // outside
        ];
        let idx = BruteForce::from_entries(data.iter().copied());
        let q = Rect::from_coords(0.0, 0.0, 0.35, 0.35);
        let ans = public_range_over_private(&idx, &q);
        assert_eq!(ans.min_count(), 1);
        assert_eq!(ans.max_count(), 2);
        // Expected: 1.0 (fully inside) + 0.25 (a quarter of region 2's
        // area overlaps).
        assert!((ans.expected_count - 1.25).abs() < 1e-9);
    }

    #[test]
    fn public_range_empty_area() {
        let data = [region(1, 0.1, 0.1, 0.2, 0.2)];
        let idx = BruteForce::from_entries(data.iter().copied());
        let ans = public_range_over_private(&idx, &Rect::from_coords(0.5, 0.5, 0.6, 0.6));
        assert_eq!(ans.max_count(), 0);
        assert_eq!(ans.expected_count, 0.0);
    }

    #[test]
    fn expected_count_never_exceeds_max() {
        let data: Vec<Entry> = (0..20)
            .map(|i| {
                let x = (i as f64) * 0.05;
                region(i, x, 0.0, x + 0.04, 1.0)
            })
            .collect();
        let idx = BruteForce::from_entries(data.iter().copied());
        let q = Rect::from_coords(0.3, 0.2, 0.7, 0.8);
        let ans = public_range_over_private(&idx, &q);
        assert!(ans.expected_count <= ans.max_count() as f64 + 1e-9);
        assert!(ans.min_count() as f64 <= ans.expected_count + 1e-9);
    }

    #[test]
    fn private_range_includes_all_reachable_targets() {
        let targets = [
            Entry::point(ObjectId(1), Point::new(0.5, 0.70)), // 0.1 above region
            Entry::point(ObjectId(2), Point::new(0.5, 0.95)), // too far
            Entry::point(ObjectId(3), Point::new(0.5, 0.5)),  // inside region
        ];
        let idx = BruteForce::from_entries(targets.iter().copied());
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let list = private_range_public_data(&idx, &region, 0.15);
        let ids: Vec<u64> = list.candidates.iter().map(|e| e.id.0).collect();
        assert!(ids.contains(&1));
        assert!(ids.contains(&3));
        assert!(!ids.contains(&2));
    }

    #[test]
    fn private_range_zero_radius_is_region_query() {
        let targets = [
            Entry::point(ObjectId(1), Point::new(0.5, 0.5)),
            Entry::point(ObjectId(2), Point::new(0.9, 0.9)),
        ];
        let idx = BruteForce::from_entries(targets.iter().copied());
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let list = private_range_public_data(&idx, &region, 0.0);
        assert_eq!(list.len(), 1);
        assert_eq!(list.candidates[0].id, ObjectId(1));
    }

    #[test]
    fn private_range_candidates_are_truly_reachable() {
        // Every candidate must be within radius of some point of the
        // region (i.e. min_dist(region, target) <= radius).
        let mut targets = Vec::new();
        for i in 0..100u64 {
            let x = (i % 10) as f64 / 10.0 + 0.05;
            let y = (i / 10) as f64 / 10.0 + 0.05;
            targets.push(Entry::point(ObjectId(i), Point::new(x, y)));
        }
        let idx = BruteForce::from_entries(targets.iter().copied());
        let region = Rect::from_coords(0.42, 0.42, 0.58, 0.58);
        let radius = 0.2;
        let list = private_range_public_data(&idx, &region, radius);
        for c in &list.candidates {
            assert!(
                region.min_dist(c.mbr.center()) <= radius + 1e-9,
                "{} unreachable",
                c.id
            );
        }
        // And every reachable target is present (inclusiveness).
        for t in &targets {
            if region.min_dist(t.mbr.center()) <= radius {
                assert!(list.candidates.iter().any(|c| c.id == t.id));
            }
        }
    }
}
