//! The Casper **privacy-aware query processor** (Section 5 of the paper).
//!
//! The processor answers location-based queries over *cloaked spatial
//! regions* instead of exact positions and returns a **candidate list**
//! that is
//!
//! * *inclusive* — it provably contains the exact answer (Theorems 1 and
//!   3), and
//! * *minimal* — the extended range query `A_EXT` it issues is the smallest
//!   possible given the chosen filter objects (Theorems 2 and 4).
//!
//! Three query classes are implemented:
//!
//! * [`private_nn_public_data`] — "where is my nearest gas station?", asked
//!   from a cloaked region over exact target points (Algorithm 2, with the
//!   1-, 2- and 4-filter variants of Section 6.2).
//! * [`private_nn_private_data`] — "where is my nearest buddy?", where the
//!   targets themselves are cloaked rectangles (Section 5.2).
//! * [`public_range_over_private`] / [`private_range_public_data`] —
//!   range/count queries ("how many cars in this area?"), including the
//!   probabilistic variant that weights cloaked regions by their overlap
//!   fraction.
//!
//! All functions are generic over [`casper_index::SpatialIndex`] — the
//! paper stresses the framework "can be seamlessly integrated with any
//! traditional location-based database server", and the test suite runs
//! every algorithm against the R-tree, the uniform grid, and the
//! brute-force scan.

#![warn(missing_docs)]

mod aggregate;
#[cfg(feature = "qp-cache")]
pub mod cache;
mod extend;
mod filter;
mod knn;
mod nn;
mod range;
#[cfg(feature = "telemetry")]
mod tel;

pub use aggregate::{DensityGrid, DensityTimeline};
pub use extend::{extended_area_private, extended_area_public, PrivateBoundMode};
pub use filter::{assign_filters_private, assign_filters_public, FilterCount, VertexFilters};
pub use knn::{private_knn_private_data, private_knn_public_data};
pub use nn::{private_nn_private_data, private_nn_public_data};
pub use range::{private_range_public_data, public_range_over_private, RangeAnswer};

use casper_geometry::Rect;
use casper_index::Entry;

/// The candidate list returned to the client, plus the artefacts of the
/// computation the evaluation section measures.
///
/// Candidate lists are kept in **canonical form** — sorted by
/// `(id, mbr)` and deduplicated — so two computations of the same query
/// compare bit-identical and the candidate cache stores exactly one
/// representation. Construct through [`CandidateList::from_parts`] (or
/// [`CandidateList::empty`]) to preserve this.
#[derive(Debug, Clone)]
pub struct CandidateList {
    /// The target objects the client must consider; guaranteed to contain
    /// the exact answer. Canonically ordered (see type docs).
    pub candidates: Vec<Entry>,
    /// The extended search area the server's range query used.
    pub a_ext: Rect,
    /// The filter objects selected in Step 1 of Algorithm 2.
    pub filters: Vec<Entry>,
    /// The **dependency region** of this answer: an object mutation whose
    /// old and new geometry both lie outside this rectangle provably
    /// cannot change the answer. It is the union of `a_ext` with the
    /// bounding boxes of the filter-search circles (a target appearing
    /// closer to a search anchor than its current filter changes the
    /// filter assignment, hence `A_EXT` itself). Non-finite when *any*
    /// mutation may change the answer (e.g. an empty index, or a k-NN
    /// query short of `k` targets).
    pub dep: Rect,
}

/// Canonical sort key: object id first, then the exact MBR bit patterns
/// (total order even for f64 coordinates, and deterministic).
fn canonical_key(e: &Entry) -> (u64, u64, u64, u64, u64) {
    (
        e.id.0,
        e.mbr.min.x.to_bits(),
        e.mbr.min.y.to_bits(),
        e.mbr.max.x.to_bits(),
        e.mbr.max.y.to_bits(),
    )
}

/// Sorts `entries` into canonical order and drops exact duplicates.
pub(crate) fn canonicalize(entries: &mut Vec<Entry>) {
    entries.sort_unstable_by_key(canonical_key);
    entries.dedup_by_key(|e| canonical_key(e));
}

impl CandidateList {
    /// Builds a candidate list in canonical form: `candidates` is sorted
    /// by `(id, mbr)` and exact duplicates are dropped. Every query path
    /// in this crate constructs its result here.
    pub fn from_parts(
        mut candidates: Vec<Entry>,
        a_ext: Rect,
        filters: Vec<Entry>,
        dep: Rect,
    ) -> Self {
        canonicalize(&mut candidates);
        Self {
            candidates,
            a_ext,
            filters,
            dep,
        }
    }

    /// The empty answer for `region` over an empty index. Its dependency
    /// region is unbounded: inserting a target *anywhere* changes it.
    pub fn empty(region: &Rect) -> Self {
        Self {
            candidates: Vec::new(),
            a_ext: *region,
            filters: Vec::new(),
            dep: everywhere(),
        }
    }

    /// Number of candidate objects — the "candidate list size" metric of
    /// Figures 13a–16a.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` when no candidates were found (empty data set).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// The unbounded rectangle: dependency region of answers any mutation
/// could change.
pub(crate) fn everywhere() -> Rect {
    Rect::from_coords(
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::ObjectId;

    /// Pins the canonical representation every query path (and the
    /// candidate cache) relies on: sorted by `(id, mbr bits)`, exact
    /// duplicates removed, distinct MBRs under one id kept.
    #[test]
    fn from_parts_is_sorted_and_deduped() {
        let a = Entry::point(ObjectId(3), Point::new(0.5, 0.5));
        let b = Entry::point(ObjectId(1), Point::new(0.9, 0.1));
        let c = Entry::new(ObjectId(3), Rect::from_coords(0.1, 0.1, 0.2, 0.2));
        let list =
            CandidateList::from_parts(vec![a, b, a, c, b], Rect::unit(), Vec::new(), Rect::unit());
        // Sorted by id, then by MBR bits; duplicates gone.
        assert_eq!(list.candidates.len(), 3);
        assert_eq!(list.candidates[0], b);
        assert_eq!(list.candidates[1], c, "ties on id break on the MBR");
        assert_eq!(list.candidates[2], a);
        // Idempotent: re-canonicalising changes nothing.
        let again = CandidateList::from_parts(
            list.candidates.clone(),
            Rect::unit(),
            Vec::new(),
            Rect::unit(),
        );
        assert_eq!(again.candidates, list.candidates);
    }

    #[test]
    fn empty_list_has_unbounded_dependency() {
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let list = CandidateList::empty(&region);
        assert!(list.is_empty());
        assert_eq!(list.a_ext, region);
        assert!(!list.dep.is_finite());
    }
}
