//! The Casper **privacy-aware query processor** (Section 5 of the paper).
//!
//! The processor answers location-based queries over *cloaked spatial
//! regions* instead of exact positions and returns a **candidate list**
//! that is
//!
//! * *inclusive* — it provably contains the exact answer (Theorems 1 and
//!   3), and
//! * *minimal* — the extended range query `A_EXT` it issues is the smallest
//!   possible given the chosen filter objects (Theorems 2 and 4).
//!
//! Three query classes are implemented:
//!
//! * [`private_nn_public_data`] — "where is my nearest gas station?", asked
//!   from a cloaked region over exact target points (Algorithm 2, with the
//!   1-, 2- and 4-filter variants of Section 6.2).
//! * [`private_nn_private_data`] — "where is my nearest buddy?", where the
//!   targets themselves are cloaked rectangles (Section 5.2).
//! * [`public_range_over_private`] / [`private_range_public_data`] —
//!   range/count queries ("how many cars in this area?"), including the
//!   probabilistic variant that weights cloaked regions by their overlap
//!   fraction.
//!
//! All functions are generic over [`casper_index::SpatialIndex`] — the
//! paper stresses the framework "can be seamlessly integrated with any
//! traditional location-based database server", and the test suite runs
//! every algorithm against the R-tree, the uniform grid, and the
//! brute-force scan.

#![warn(missing_docs)]

mod aggregate;
mod extend;
mod filter;
mod knn;
mod nn;
mod range;
#[cfg(feature = "telemetry")]
mod tel;

pub use aggregate::{DensityGrid, DensityTimeline};
pub use extend::{extended_area_private, extended_area_public, PrivateBoundMode};
pub use filter::{assign_filters_private, assign_filters_public, FilterCount, VertexFilters};
pub use knn::{private_knn_private_data, private_knn_public_data};
pub use nn::{private_nn_private_data, private_nn_public_data};
pub use range::{private_range_public_data, public_range_over_private, RangeAnswer};

use casper_geometry::Rect;
use casper_index::Entry;

/// The candidate list returned to the client, plus the artefacts of the
/// computation the evaluation section measures.
#[derive(Debug, Clone)]
pub struct CandidateList {
    /// The target objects the client must consider; guaranteed to contain
    /// the exact answer.
    pub candidates: Vec<Entry>,
    /// The extended search area the server's range query used.
    pub a_ext: Rect,
    /// The filter objects selected in Step 1 of Algorithm 2.
    pub filters: Vec<Entry>,
}

impl CandidateList {
    /// Number of candidate objects — the "candidate list size" metric of
    /// Figures 13a–16a.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` when no candidates were found (empty data set).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}
