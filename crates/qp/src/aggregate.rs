//! Aggregate public queries over private data: density surfaces.
//!
//! The paper's second query class ("how many cars in a certain area") is a
//! single count; administrators typically want the whole *surface* — a
//! traffic heat map. Under the anonymizer's uniformity guarantee
//! (Section 4.3: a user is uniformly distributed over her cloaked region),
//! a region contributes to each map cell exactly the fraction of its area
//! falling in that cell, which makes the expected density surface exact in
//! expectation and mass-preserving by construction.

use casper_geometry::Rect;
use casper_index::{Entry, SpatialIndex};

/// An expected-count density surface over the unit square.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    resolution: usize,
    cells: Vec<f64>,
}

impl DensityGrid {
    /// Builds the surface at `resolution x resolution` from every cloaked
    /// region stored in `index`.
    ///
    /// Regions extending beyond the unit square contribute only their
    /// in-bounds share (their users are certainly inside the service
    /// space, so the in-bounds mass is renormalised).
    pub fn build<I: SpatialIndex>(index: &I, resolution: usize) -> Self {
        Self::from_regions(index.range(&Rect::unit()), resolution)
    }

    /// Builds the surface from an already-materialised set of cloaked
    /// regions — the shape the candidate cache hands back (see
    /// `cache::cached_full_scan`), letting repeated density builds skip
    /// the index scan.
    pub fn from_regions(regions: impl IntoIterator<Item = Entry>, resolution: usize) -> Self {
        let resolution = resolution.clamp(1, 1024);
        let mut cells = vec![0.0; resolution * resolution];
        let step = 1.0 / resolution as f64;
        for entry in regions {
            let clipped = entry.mbr.clamp_to(&Rect::unit());
            let mass = clipped.area();
            if mass <= 0.0 {
                // Degenerate (point-sized) region: all mass in one cell.
                let cx = ((clipped.min.x / step) as usize).min(resolution - 1);
                let cy = ((clipped.min.y / step) as usize).min(resolution - 1);
                cells[cy * resolution + cx] += 1.0;
                continue;
            }
            let x0 = ((clipped.min.x / step) as usize).min(resolution - 1);
            let x1 = ((clipped.max.x / step) as usize).min(resolution - 1);
            let y0 = ((clipped.min.y / step) as usize).min(resolution - 1);
            let y1 = ((clipped.max.y / step) as usize).min(resolution - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let cell = Rect::from_coords(
                        x as f64 * step,
                        y as f64 * step,
                        (x + 1) as f64 * step,
                        (y + 1) as f64 * step,
                    );
                    cells[y * resolution + x] += clipped.overlap_area(&cell) / mass;
                }
            }
        }
        Self { resolution, cells }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Expected user count in cell `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.cells[y * self.resolution + x]
    }

    /// Total expected mass — equals the number of stored regions.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// The densest cell as `((x, y), expected count)`.
    pub fn hottest(&self) -> ((usize, usize), f64) {
        let (idx, &v) = self
            .cells
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("grid is never empty");
        ((idx % self.resolution, idx / self.resolution), v)
    }

    /// Expected count inside an arbitrary query rectangle, by summing the
    /// covered cells weighted by coverage (fast approximation of
    /// [`crate::public_range_over_private`]'s exact expectation).
    pub fn expected_in(&self, query: &Rect) -> f64 {
        let step = 1.0 / self.resolution as f64;
        let mut total = 0.0;
        for y in 0..self.resolution {
            for x in 0..self.resolution {
                let cell = Rect::from_coords(
                    x as f64 * step,
                    y as f64 * step,
                    (x + 1) as f64 * step,
                    (y + 1) as f64 * step,
                );
                // Assume the cell's mass is uniform within the cell.
                total += self.at(x, y) * cell.overlap_area(query) / cell.area();
            }
        }
        total
    }
}

/// A bounded history of density surfaces: the administrator's traffic
/// *flow* view. Frames must share one resolution; the oldest frame is
/// evicted once `capacity` is reached.
#[derive(Debug, Clone)]
pub struct DensityTimeline {
    resolution: usize,
    capacity: usize,
    frames: std::collections::VecDeque<DensityGrid>,
}

impl DensityTimeline {
    /// Creates a timeline holding up to `capacity` frames of
    /// `resolution x resolution` surfaces.
    pub fn new(resolution: usize, capacity: usize) -> Self {
        Self {
            resolution: resolution.clamp(1, 1024),
            capacity: capacity.max(1),
            frames: std::collections::VecDeque::new(),
        }
    }

    /// Number of stored frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when no frames are stored.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Appends a frame (evicting the oldest at capacity).
    ///
    /// # Panics
    /// Panics when the frame's resolution differs from the timeline's.
    pub fn push(&mut self, frame: DensityGrid) {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "timeline frames must share a resolution"
        );
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// The latest frame.
    pub fn latest(&self) -> Option<&DensityGrid> {
        self.frames.back()
    }

    /// Per-cell expected-count change between the oldest and newest
    /// stored frames (`newest - oldest`); `None` with fewer than 2 frames.
    pub fn flow(&self) -> Option<Vec<f64>> {
        if self.frames.len() < 2 {
            return None;
        }
        let first = self.frames.front().expect("len >= 2");
        let last = self.frames.back().expect("len >= 2");
        let n = self.resolution;
        let mut out = Vec::with_capacity(n * n);
        for y in 0..n {
            for x in 0..n {
                out.push(last.at(x, y) - first.at(x, y));
            }
        }
        Some(out)
    }

    /// The cell gaining the most expected mass over the window, as
    /// `((x, y), gain)` — where the traffic is heading.
    pub fn fastest_growing(&self) -> Option<((usize, usize), f64)> {
        let flow = self.flow()?;
        let (idx, &gain) = flow.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        Some(((idx % self.resolution, idx / self.resolution), gain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::{BruteForce, Entry, ObjectId};

    fn region(id: u64, x0: f64, y0: f64, x1: f64, y1: f64) -> Entry {
        Entry::new(ObjectId(id), Rect::from_coords(x0, y0, x1, y1))
    }

    #[test]
    fn mass_is_conserved() {
        let idx = BruteForce::from_entries([
            region(1, 0.0, 0.0, 0.3, 0.3),
            region(2, 0.5, 0.5, 0.9, 0.7),
            region(3, 0.2, 0.6, 0.4, 0.9),
        ]);
        let g = DensityGrid::build(&idx, 16);
        assert!((g.total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fully_contained_region_lands_in_its_cells() {
        // One region exactly covering one grid cell.
        let idx = BruteForce::from_entries([region(1, 0.25, 0.25, 0.5, 0.5)]);
        let g = DensityGrid::build(&idx, 4);
        assert!((g.at(1, 1) - 1.0).abs() < 1e-9);
        assert!((g.total() - 1.0).abs() < 1e-9);
        assert_eq!(g.hottest().0, (1, 1));
    }

    #[test]
    fn spanning_region_splits_proportionally() {
        // A region covering the two bottom-left cells equally.
        let idx = BruteForce::from_entries([region(1, 0.0, 0.0, 0.5, 0.25)]);
        let g = DensityGrid::build(&idx, 4);
        assert!((g.at(0, 0) - 0.5).abs() < 1e-9);
        assert!((g.at(1, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_point_region_counts_once() {
        let idx = BruteForce::from_entries([Entry::point(ObjectId(1), Point::new(0.61, 0.13))]);
        let g = DensityGrid::build(&idx, 8);
        assert!((g.total() - 1.0).abs() < 1e-9);
        assert_eq!(g.hottest().1, 1.0);
    }

    #[test]
    fn expected_in_matches_exact_range_expectation() {
        let entries = [
            region(1, 0.0, 0.0, 0.25, 0.25),
            region(2, 0.125, 0.125, 0.375, 0.375),
            region(3, 0.7, 0.7, 0.95, 0.95),
        ];
        let idx = BruteForce::from_entries(entries);
        // A query aligned to the density grid so the approximation is
        // exact.
        let q = Rect::from_coords(0.0, 0.0, 0.5, 0.5);
        let g = DensityGrid::build(&idx, 8);
        let exact = crate::public_range_over_private(&idx, &q).expected_count;
        assert!(
            (g.expected_in(&q) - exact).abs() < 1e-9,
            "{} vs {exact}",
            g.expected_in(&q)
        );
    }

    #[test]
    fn timeline_flow_tracks_migration() {
        // Population drifts from the bottom-left to the top-right.
        let frame = |x0: f64| {
            let idx = BruteForce::from_entries([region(1, x0, x0, x0 + 0.2, x0 + 0.2)]);
            DensityGrid::build(&idx, 4)
        };
        let mut tl = DensityTimeline::new(4, 8);
        assert!(tl.flow().is_none());
        tl.push(frame(0.0));
        tl.push(frame(0.4));
        tl.push(frame(0.75));
        assert_eq!(tl.len(), 3);
        let ((gx, gy), gain) = tl.fastest_growing().unwrap();
        assert!(
            gx >= 2 && gy >= 2,
            "growth must be in the top-right, got ({gx},{gy})"
        );
        assert!(gain > 0.0);
        // Flow sums to ~0: the population size did not change.
        let net: f64 = tl.flow().unwrap().iter().sum();
        assert!(net.abs() < 1e-9);
    }

    #[test]
    fn timeline_capacity_evicts_oldest() {
        let frame = || DensityGrid::build(&BruteForce::new(), 2);
        let mut tl = DensityTimeline::new(2, 2);
        tl.push(frame());
        tl.push(frame());
        tl.push(frame());
        assert_eq!(tl.len(), 2);
        assert!(tl.latest().is_some());
    }

    #[test]
    #[should_panic]
    fn timeline_rejects_mismatched_resolution() {
        let mut tl = DensityTimeline::new(4, 2);
        tl.push(DensityGrid::build(&BruteForce::new(), 8));
    }

    #[test]
    fn hottest_cell_finds_the_cluster() {
        let mut entries = vec![];
        for i in 0..10 {
            entries.push(region(i, 0.70, 0.70, 0.80, 0.80)); // cluster
        }
        entries.push(region(99, 0.0, 0.0, 0.1, 0.1));
        let idx = BruteForce::from_entries(entries);
        let g = DensityGrid::build(&idx, 10);
        let ((x, y), v) = g.hottest();
        assert_eq!((x, y), (7, 7));
        assert!(v > 5.0);
    }
}
