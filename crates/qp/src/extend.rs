//! Steps 2 and 3 of Algorithm 2: the *middle point* and *extended area*
//! computation.
//!
//! For each edge `e_ij = v_i v_j` of the cloaked region the algorithm
//! bounds the distance from any point on the edge to its assigned filter
//! target and pushes the corresponding rectangle side outward by that
//! bound:
//!
//! * If both corners share a filter `t`, the bound is
//!   `max(d(v_i, t), d(v_j, t))` — the distance function along the edge is
//!   convex, so its maximum is attained at an endpoint (the paper's Case 1,
//!   Figure 6a).
//! * Otherwise the perpendicular bisector of the two filters crosses the
//!   edge at the middle point `m_ij`, splitting it into a `t_i`-nearer and
//!   a `t_j`-nearer part; the bound is `max(d_i, d_j, d_m)` (Case 2,
//!   Figure 6b).
//!
//! For private data (Section 5.2) distances are measured to the furthest
//! corner of each filter's cloaked rectangle. The paper's `d_m` takes the
//! distance from `m_ij` to an endpoint of the line `L_ij` connecting two
//! specific corners; [`PrivateBoundMode`] selects between that literal
//! construction and a conservative variant that uses the full
//! furthest-corner distance from `m_ij` (which is never smaller, preserving
//! inclusiveness in the corner cases where the literal construction
//! under-measures — see DESIGN.md).

use casper_geometry::{Line, Point, Rect, Segment};
use casper_index::Entry;

use crate::VertexFilters;

/// How to bound the middle-point distance for private (rectangular)
/// target data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrivateBoundMode {
    /// The paper's literal construction: `d_m` is the distance from `m_ij`
    /// to an endpoint of `L_ij` (the line connecting the furthest corner of
    /// `t_i` from `v_j` with the furthest corner of `t_j` from `v_i`).
    PaperFaithful,
    /// Conservative: `d_m` is the larger furthest-corner distance from
    /// `m_ij` to either filter rectangle. Never smaller than the literal
    /// construction, hence inclusive in all cases. The default.
    #[default]
    Safe,
}

/// Middle point of an edge whose corners have different filters: the
/// intersection of the filters' perpendicular bisector with the edge.
/// `bisect_a`/`bisect_b` are the representative points the bisector is
/// built from. Returns `None` when the bisector misses the edge (possible
/// with the 1-/2-filter variants, where corner assignments are not true
/// nearest neighbours).
fn middle_point(edge: &Segment, bisect_a: Point, bisect_b: Point) -> Option<Point> {
    let bisector = Line::perpendicular_bisector(bisect_a, bisect_b)?;
    edge.intersect_line(&bisector)
}

/// Computes `A_EXT` for **public** (exact point) targets: Algorithm 2
/// Steps 2–3.
pub fn extended_area_public(region: &Rect, filters: &VertexFilters) -> Rect {
    let corners = region.corners();
    let mut a_ext = *region;
    for (idx, (side, edge)) in region.edges().iter().enumerate() {
        let (i, j) = (idx, (idx + 1) % 4);
        let (t_i, t_j) = (&filters.per_corner[i], &filters.per_corner[j]);
        let p_i = t_i.mbr.min; // point targets are degenerate rects
        let p_j = t_j.mbr.min;
        let d_i = corners[i].dist(p_i);
        let d_j = corners[j].dist(p_j);
        let d_m = if t_i.id == t_j.id {
            0.0
        } else {
            match middle_point(edge, p_i, p_j) {
                Some(m) => m.dist(p_i),
                // Bisector misses the edge: the whole edge is closer to one
                // filter; bound it by that filter alone (convexity).
                None => {
                    let t = if corners[i].dist(p_j) < corners[i].dist(p_i) {
                        p_j
                    } else {
                        p_i
                    };
                    corners[i].dist(t).max(corners[j].dist(t))
                }
            }
        };
        let max_d = d_i.max(d_j).max(d_m);
        a_ext = a_ext.expand_side(*side, max_d);
    }
    a_ext
}

/// Computes `A_EXT` for **private** (cloaked rectangle) targets: the
/// Section 5.2 modification of Steps 2–3.
pub fn extended_area_private(
    region: &Rect,
    filters: &VertexFilters,
    mode: PrivateBoundMode,
) -> Rect {
    let corners = region.corners();
    let mut a_ext = *region;
    for (idx, (side, edge)) in region.edges().iter().enumerate() {
        let (i, j) = (idx, (idx + 1) % 4);
        let (t_i, t_j) = (&filters.per_corner[i], &filters.per_corner[j]);
        // d_i: distance from v_i to the furthest corner of t_i from v_i.
        let d_i = t_i.mbr.max_dist(corners[i]);
        let d_j = t_j.mbr.max_dist(corners[j]);
        let d_m = if t_i.id == t_j.id {
            0.0
        } else {
            // L_ij connects the furthest corner of t_i from the *reverse*
            // vertex v_j with the furthest corner of t_j from v_i.
            let fc_i = t_i.mbr.farthest_corner(corners[j]);
            let fc_j = t_j.mbr.farthest_corner(corners[i]);
            match middle_point(edge, fc_i, fc_j) {
                Some(m) => match mode {
                    PrivateBoundMode::PaperFaithful => m.dist(fc_i),
                    PrivateBoundMode::Safe => t_i.mbr.max_dist(m).max(t_j.mbr.max_dist(m)),
                },
                None => {
                    // Whole edge governed by a single filter: bound both
                    // endpoints against it conservatively.
                    let bound =
                        |t: &Entry| t.mbr.max_dist(corners[i]).max(t.mbr.max_dist(corners[j]));
                    bound(t_i).min(bound(t_j))
                }
            }
        };
        let max_d = d_i.max(d_j).max(d_m);
        a_ext = a_ext.expand_side(*side, max_d);
    }
    a_ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::approx_eq;
    use casper_index::ObjectId;

    fn pt(id: u64, x: f64, y: f64) -> Entry {
        Entry::point(ObjectId(id), Point::new(x, y))
    }

    fn filters_same(e: Entry) -> VertexFilters {
        VertexFilters {
            per_corner: [e; 4],
            distinct: vec![e],
            anchors: Vec::new(),
        }
    }

    #[test]
    fn a_ext_always_contains_the_region() {
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let f = filters_same(pt(0, 0.5, 0.5));
        let ext = extended_area_public(&region, &f);
        assert!(ext.contains_rect(&region));
    }

    #[test]
    fn single_central_filter_expands_by_corner_distance() {
        // Filter exactly at the region centre: every edge expands by the
        // distance from its far corner to the centre.
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let f = filters_same(pt(0, 0.5, 0.5));
        let ext = extended_area_public(&region, &f);
        let half_diag = (0.1f64 * 0.1 + 0.1 * 0.1).sqrt(); // corner-to-centre
        assert!(approx_eq(region.min.x - ext.min.x, half_diag));
        assert!(approx_eq(ext.max.x - region.max.x, half_diag));
        assert!(approx_eq(region.min.y - ext.min.y, half_diag));
        assert!(approx_eq(ext.max.y - region.max.y, half_diag));
    }

    #[test]
    fn filter_on_edge_gives_tight_bound() {
        // Filter sits exactly on the bottom-left corner: the bottom edge's
        // bound is the edge length (distance from the far corner).
        let region = Rect::from_coords(0.0, 0.0, 0.2, 0.2);
        let f = filters_same(pt(0, 0.0, 0.0));
        let ext = extended_area_public(&region, &f);
        // Bottom edge: d_i = 0, d_j = 0.2, no middle point → bound 0.2.
        assert!(approx_eq(region.min.y - ext.min.y, 0.2));
        // Right edge: corners (0.2,0) and (0.2,0.2): distances 0.2 and
        // 0.2*sqrt(2) → bound 0.2*sqrt(2).
        assert!(approx_eq(ext.max.x - region.max.x, 0.2 * 2f64.sqrt()));
    }

    #[test]
    fn two_different_filters_use_middle_point() {
        // Region edge from (0,0) to (1,0); filters at (0,-0.1) and
        // (1,-0.1). Bisector x = 0.5 crosses the edge at m = (0.5, 0);
        // d_m = dist((0.5,0),(0,-0.1)) ≈ 0.50990.
        let region = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let t0 = pt(0, 0.0, -0.1);
        let t1 = pt(1, 1.0, -0.1);
        let f = VertexFilters {
            per_corner: [t0, t1, t1, t0],
            distinct: vec![t0, t1],
            anchors: Vec::new(),
        };
        let ext = extended_area_public(&region, &f);
        let d_m = Point::new(0.5, 0.0).dist(Point::new(0.0, -0.1));
        assert!(approx_eq(region.min.y - ext.min.y, d_m));
    }

    #[test]
    fn private_bounds_use_furthest_corners() {
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let t = Entry::new(ObjectId(0), Rect::from_coords(0.45, 0.45, 0.55, 0.55));
        let f = filters_same(t);
        let ext = extended_area_private(&region, &f, PrivateBoundMode::Safe);
        // Bottom edge bound: max over corners of max-dist to t's rect.
        // v0 = (0.4, 0.4): furthest corner of t is (0.55, 0.55) → dist.
        let d = Point::new(0.4, 0.4).dist(Point::new(0.55, 0.55));
        assert!(approx_eq(region.min.y - ext.min.y, d));
        assert!(ext.contains_rect(&region));
    }

    #[test]
    fn safe_mode_never_smaller_than_paper_mode() {
        let region = Rect::from_coords(0.3, 0.3, 0.5, 0.5);
        let t0 = Entry::new(ObjectId(0), Rect::from_coords(0.0, 0.1, 0.2, 0.3));
        let t1 = Entry::new(ObjectId(1), Rect::from_coords(0.6, 0.0, 0.9, 0.2));
        let f = VertexFilters {
            per_corner: [t0, t1, t1, t0],
            distinct: vec![t0, t1],
            anchors: Vec::new(),
        };
        let paper = extended_area_private(&region, &f, PrivateBoundMode::PaperFaithful);
        let safe = extended_area_private(&region, &f, PrivateBoundMode::Safe);
        assert!(safe.contains_rect(&paper));
    }

    #[test]
    fn degenerate_region_still_works() {
        // A point-sized cloaked region (no privacy): A_EXT is the disc
        // bounding box around it.
        let region = Rect::point(Point::new(0.5, 0.5));
        let f = filters_same(pt(0, 0.6, 0.5));
        let ext = extended_area_public(&region, &f);
        assert!(ext.contains(Point::new(0.5, 0.5)));
        assert!(approx_eq(ext.max.x - 0.5, 0.1));
        assert!(approx_eq(0.5 - ext.min.x, 0.1));
    }
}
