//! The privacy-aware **candidate cache** (feature `qp-cache`).
//!
//! Cloaked regions come out of the anonymizer's grid pyramid, so their
//! coordinates quantize to cell boundaries and heavy traffic asks the
//! same handful of `(region, query kind, k)` combinations over and over.
//! This module memoises the candidate lists those queries produce and
//! invalidates them *lazily and exactly* through the per-cell version
//! counters of [`casper_grid::CellVersionTable`]:
//!
//! * every answer carries its [dependency region](crate::CandidateList::dep)
//!   — the rectangle outside which no object mutation can change it;
//! * storing an answer records a [`VersionStamp`] of the counters that
//!   region covers;
//! * a lookup revalidates the stamp — counters are monotone, so an
//!   unchanged sum proves no mutation touched the dependency region and
//!   the cached list is **bit-identical** to what recomputation would
//!   produce (the differential oracle suite in `tests/` enforces this).
//!
//! Writers must bump the version table *after* applying each store
//! mutation, and queries must not run concurrently with mutations (the
//! server plane's reader/writer lock provides this). As a belt-and-braces
//! guard against unserialised writers, [`CandidateCache::get_or_compute`]
//! refuses to cache an answer when the table's global mutation count
//! moved while the answer was being computed.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use casper_geometry::Rect;
use casper_grid::{CellVersionTable, VersionStamp};
use casper_index::SpatialIndex;

use crate::{
    everywhere, private_knn_private_data, private_knn_public_data, private_nn_private_data,
    private_nn_public_data, private_range_public_data, CandidateList, FilterCount,
    PrivateBoundMode,
};

/// The query classes the cache distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`crate::private_nn_public_data`].
    NnPublic,
    /// [`crate::private_nn_private_data`].
    NnPrivate,
    /// [`crate::private_knn_public_data`].
    KnnPublic,
    /// [`crate::private_knn_private_data`].
    KnnPrivate,
    /// [`crate::private_range_public_data`].
    RangePublic,
    /// [`crate::public_range_over_private`]'s overlap scan.
    RangeOverPrivate,
    /// The full-store scan feeding [`crate::DensityGrid`].
    FullScan,
}

/// Cache key: the exact cloaked-region bit pattern plus every parameter
/// that feeds the computation.
///
/// Regions are *already* quantized — the anonymizer emits unions of grid
/// cells, so coordinates are exact multiples of cell sides and repeat
/// bit-identically across users sharing a cloaked area. Hashing the raw
/// bits therefore groups queries by grid-cell tuple without any lossy
/// rounding (which would alias distinct regions and break exactness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: QueryKind,
    region: [u64; 4],
    k: u32,
    filters: u8,
    /// Kind-specific extra parameter: `min_overlap` bits for `NnPrivate`,
    /// `radius` bits for `RangePublic`, a caller-chosen discriminant
    /// (e.g. category id) otherwise.
    extra: u64,
}

impl CacheKey {
    /// Builds a key from the query shape.
    pub fn new(
        kind: QueryKind,
        region: &Rect,
        k: u32,
        filters: Option<FilterCount>,
        extra: u64,
    ) -> Self {
        let f = match filters {
            None => 0,
            Some(FilterCount::One) => 1,
            Some(FilterCount::Two) => 2,
            Some(FilterCount::Four) => 4,
        };
        Self {
            kind,
            region: [
                region.min.x.to_bits(),
                region.min.y.to_bits(),
                region.max.x.to_bits(),
                region.max.y.to_bits(),
            ],
            k,
            filters: f,
            extra,
        }
    }
}

/// Sizing knobs for [`CandidateCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum number of cached answers across all shards.
    pub capacity: usize,
    /// Number of independently-locked shards (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            shards: 8,
        }
    }
}

/// Point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a still-valid cached entry.
    pub hits: u64,
    /// Lookups that found nothing cached under the key.
    pub misses: u64,
    /// Lookups that found an entry whose version stamp no longer
    /// validated (lazy invalidation: the entry is dropped on the spot).
    pub stale: u64,
    /// Answers stored.
    pub insertions: u64,
    /// Entries discarded to stay under capacity.
    pub evictions: u64,
    /// Answers *not* stored because the global mutation count moved
    /// mid-computation (unserialised writer detected).
    pub skipped: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CachedEntry {
    list: CandidateList,
    stamp: VersionStamp,
}

/// A sharded, version-validated store of candidate lists.
pub struct CandidateCache {
    shards: Vec<Mutex<HashMap<CacheKey, CachedEntry>>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    skipped: AtomicU64,
}

impl std::fmt::Debug for CandidateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateCache")
            .field("shards", &self.shards.len())
            .field("per_shard_cap", &self.per_shard_cap)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for CandidateCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl CandidateCache {
    /// Creates a cache with the given sizing.
    pub fn new(cfg: CacheConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per_shard_cap = cfg.capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Returns the cached answer for `key` if its version stamp still
    /// validates against `versions`; drops the entry (lazy invalidation)
    /// if it went stale.
    pub fn lookup(&self, key: &CacheKey, versions: &CellVersionTable) -> Option<CandidateList> {
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(key) {
            Some(entry) if versions.validate(&entry.stamp) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                crate::tel::record_cache_event("hit");
                Some(entry.list.clone())
            }
            Some(_) => {
                shard.remove(key);
                self.stale.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                crate::tel::record_cache_event("stale");
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                crate::tel::record_cache_event("miss");
                None
            }
        }
    }

    /// Stores an answer under `key` with the stamp of its dependency
    /// region, evicting an arbitrary entry if the shard is full.
    pub fn store(&self, key: CacheKey, list: CandidateList, stamp: VersionStamp) {
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if shard.len() >= self.per_shard_cap && !shard.contains_key(&key) {
            if let Some(&victim) = shard.keys().next() {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                crate::tel::record_cache_event("eviction");
            }
        }
        shard.insert(key, CachedEntry { list, stamp });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// The memoisation workhorse: serve from cache, or run `compute`,
    /// stamp its dependency region and store the result.
    ///
    /// The answer is cached only when the table's global mutation count
    /// did not move across the computation — otherwise a concurrent
    /// (unserialised) writer may have been half-applied when `compute`
    /// read the store, and memoising that answer could serve it forever.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        versions: &CellVersionTable,
        compute: impl FnOnce() -> CandidateList,
    ) -> CandidateList {
        if let Some(hit) = self.lookup(&key, versions) {
            return hit;
        }
        let before = versions.mutation_count();
        let list = compute();
        let stamp = versions.stamp(&list.dep);
        if versions.mutation_count() == before {
            self.store(key, list.clone(), stamp);
        } else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        }
        list
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
        }
    }

    /// Number of currently cached answers (valid or not-yet-revalidated).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached answer (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// Cached [`crate::private_nn_public_data`]. `extra` discriminates
/// independent stores sharing one cache (e.g. per-category indexes);
/// pass 0 for a single store.
pub fn cached_nn_public<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    region: &Rect,
    filters: FilterCount,
    extra: u64,
) -> CandidateList {
    let key = CacheKey::new(QueryKind::NnPublic, region, 0, Some(filters), extra);
    cache.get_or_compute(key, versions, || {
        private_nn_public_data(index, region, filters)
    })
}

/// Cached [`crate::private_nn_private_data`]. The overlap threshold and
/// bound mode are folded into the key.
pub fn cached_nn_private<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    region: &Rect,
    filters: FilterCount,
    mode: PrivateBoundMode,
    min_overlap: f64,
) -> CandidateList {
    // Fold the mode into the low bit of the threshold's mantissa-exact
    // bit pattern's companion field: keep them separable by construction.
    let extra = (min_overlap.to_bits() & !1)
        | match mode {
            PrivateBoundMode::PaperFaithful => 0,
            PrivateBoundMode::Safe => 1,
        };
    let key = CacheKey::new(QueryKind::NnPrivate, region, 0, Some(filters), extra);
    cache.get_or_compute(key, versions, || {
        private_nn_private_data(index, region, filters, mode, min_overlap)
    })
}

/// Cached [`crate::private_knn_public_data`].
pub fn cached_knn_public<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    region: &Rect,
    k: usize,
    filters: FilterCount,
    extra: u64,
) -> CandidateList {
    let key = CacheKey::new(
        QueryKind::KnnPublic,
        region,
        k.min(u32::MAX as usize) as u32,
        Some(filters),
        extra,
    );
    cache.get_or_compute(key, versions, || {
        private_knn_public_data(index, region, k, filters)
    })
}

/// Cached [`crate::private_knn_private_data`].
pub fn cached_knn_private<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    region: &Rect,
    k: usize,
    filters: FilterCount,
) -> CandidateList {
    let key = CacheKey::new(
        QueryKind::KnnPrivate,
        region,
        k.min(u32::MAX as usize) as u32,
        Some(filters),
        0,
    );
    cache.get_or_compute(key, versions, || {
        private_knn_private_data(index, region, k, filters)
    })
}

/// Cached [`crate::private_range_public_data`]; the radius rides in the
/// key's `extra` bits.
pub fn cached_range_public<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    region: &Rect,
    radius: f64,
) -> CandidateList {
    let key = CacheKey::new(QueryKind::RangePublic, region, 0, None, radius.to_bits());
    cache.get_or_compute(key, versions, || {
        private_range_public_data(index, region, radius)
    })
}

/// Cached overlap scan for [`crate::public_range_over_private`]: the
/// canonical list of regions overlapping `query` (its dependency region
/// is the query rectangle itself). Callers derive the definite/expected
/// aggregates from the returned list — they are cheap relative to the
/// scan.
pub fn cached_range_over_private<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    query: &Rect,
) -> CandidateList {
    let key = CacheKey::new(QueryKind::RangeOverPrivate, query, 0, None, 0);
    cache.get_or_compute(key, versions, || {
        CandidateList::from_parts(index.range(query), *query, Vec::new(), *query)
    })
}

/// Cached full-store scan (everything intersecting the unit square) —
/// the input of [`crate::DensityGrid::from_regions`], so repeated
/// density builds over an unchanged store skip the index walk.
pub fn cached_full_scan<I: SpatialIndex>(
    cache: &CandidateCache,
    versions: &CellVersionTable,
    index: &I,
    extra: u64,
) -> CandidateList {
    let unit = Rect::unit();
    let key = CacheKey::new(QueryKind::FullScan, &unit, 0, None, extra);
    cache.get_or_compute(key, versions, || {
        CandidateList::from_parts(index.range(&unit), unit, Vec::new(), everywhere())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_geometry::Point;
    use casper_index::{BruteForce, Entry, ObjectId};

    fn pt(id: u64, x: f64, y: f64) -> Entry {
        Entry::point(ObjectId(id), Point::new(x, y))
    }

    fn small_world() -> BruteForce {
        BruteForce::from_entries(
            (0..25).map(|i| pt(i, (i % 5) as f64 / 5.0 + 0.1, (i / 5) as f64 / 5.0 + 0.1)),
        )
    }

    #[test]
    fn second_lookup_hits_and_matches_bit_identically() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let idx = small_world();
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let a = cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        let b = cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.a_ext, b.a_ext);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn mutation_in_dependency_region_invalidates() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let mut idx = small_world();
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let a = cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        // Insert a target right inside the region: the store mutation,
        // then the version bump (writer ordering).
        let newcomer = pt(99, 0.5, 0.5);
        idx.insert(newcomer);
        versions.bump_rect(&newcomer.mbr);
        let b = cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        assert_ne!(a.candidates.len(), b.candidates.len());
        assert!(b.candidates.iter().any(|e| e.id == ObjectId(99)));
        assert_eq!(cache.stats().stale, 1, "stale entry dropped lazily");
    }

    #[test]
    fn far_away_mutation_keeps_entry_valid() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let mut idx = small_world();
        let region = Rect::from_coords(0.42, 0.42, 0.58, 0.58);
        let a = cached_range_public(&cache, &versions, &idx, &region, 0.05);
        // A mutation far outside dep (= region expanded by 0.05).
        let far = pt(100, 0.02, 0.95);
        idx.insert(far);
        versions.bump_rect(&far.mbr);
        let b = cached_range_public(&cache, &versions, &idx, &region, 0.05);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(cache.stats().hits, 1, "far mutation must not invalidate");
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let idx = small_world();
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        cached_knn_public(&cache, &versions, &idx, &region, 1, FilterCount::Four, 0);
        cached_knn_public(&cache, &versions, &idx, &region, 2, FilterCount::Four, 0);
        cached_knn_public(&cache, &versions, &idx, &region, 2, FilterCount::One, 0);
        cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 7);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn capacity_is_respected_via_eviction() {
        let cache = CandidateCache::new(CacheConfig {
            capacity: 8,
            shards: 2,
        });
        let versions = CellVersionTable::new();
        let idx = small_world();
        for i in 0..40u64 {
            let x = (i as f64) / 50.0;
            let region = Rect::from_coords(x, 0.4, x + 0.1, 0.5);
            cached_nn_public(&cache, &versions, &idx, &region, FilterCount::One, 0);
        }
        assert!(cache.len() <= 8, "len {} exceeds capacity", cache.len());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn full_scan_is_invalidated_by_any_mutation() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let mut idx = small_world();
        let a = cached_full_scan(&cache, &versions, &idx, 0);
        assert_eq!(a.len(), 25);
        let e = pt(200, 0.33, 0.77);
        idx.insert(e);
        versions.bump_rect(&e.mbr);
        let b = cached_full_scan(&cache, &versions, &idx, 0);
        assert_eq!(b.len(), 26);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = CandidateCache::default();
        let versions = CellVersionTable::new();
        let idx = small_world();
        let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        cached_nn_public(&cache, &versions, &idx, &region, FilterCount::Four, 0);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
