//! Property tests for the k-NN extension: the candidate list must contain
//! the exact k nearest targets of every possible user position in the
//! cloaked region, for every filter variant and every k.

use casper_geometry::{Point, Rect};
use casper_index::{BruteForce, DistanceKind, Entry, ObjectId, RTree, SpatialIndex};
use casper_qp::{private_knn_private_data, private_knn_public_data, FilterCount};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn region() -> impl Strategy<Value = Rect> {
    (point(), 0.001..0.3f64, 0.001..0.3f64)
        .prop_map(|(c, w, h)| Rect::centered_at(c, w, h).clamp_to(&Rect::unit()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn knn_inclusiveness_public(
        targets in prop::collection::vec(point(), 3..60),
        reg in region(),
        k in 1usize..8,
        (u, v) in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let idx = BruteForce::from_entries(entries.iter().copied());
        let user = Point::new(
            reg.min.x + u * reg.width(),
            reg.min.y + v * reg.height(),
        );
        let want = idx.k_nearest(user, k.min(targets.len()), DistanceKind::Min);
        for fc in FilterCount::ALL {
            let list = private_knn_public_data(&idx, &reg, k, fc);
            // Compare by distance: the k-th candidate distance must equal
            // the true k-th distance (handles ties robustly).
            let mut cand: Vec<f64> = list
                .candidates
                .iter()
                .map(|e| e.mbr.min.dist(user))
                .collect();
            cand.sort_by(f64::total_cmp);
            prop_assert!(cand.len() >= want.len(), "{fc:?}: list too small");
            for (i, w) in want.iter().enumerate() {
                prop_assert!(
                    (cand[i] - w.dist).abs() < 1e-9,
                    "{fc:?}: rank {i} distance {} != true {}",
                    cand[i],
                    w.dist
                );
            }
        }
    }

    #[test]
    fn knn_agrees_across_indexes(
        targets in prop::collection::vec(point(), 10..50),
        reg in region(),
        k in 1usize..5,
    ) {
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let brute = BruteForce::from_entries(entries.iter().copied());
        let rtree = RTree::bulk_load(entries.iter().copied());
        let ids = |l: &casper_qp::CandidateList| {
            let mut v: Vec<u64> = l.candidates.iter().map(|e| e.id.0).collect();
            v.sort_unstable();
            v
        };
        let a = ids(&private_knn_public_data(&brute, &reg, k, FilterCount::Four));
        let b = ids(&private_knn_public_data(&rtree, &reg, k, FilterCount::Four));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn knn_private_data_covers_true_knn(
        seeds in prop::collection::vec((point(), 0.0..0.12f64, 0.0..0.12f64, 0.0..=1.0f64, 0.0..=1.0f64), 4..25),
        reg in region(),
        k in 1usize..4,
        (u, v) in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        let mut entries = Vec::new();
        let mut true_pos = Vec::new();
        for (i, &(c, w, h, tu, tv)) in seeds.iter().enumerate() {
            let r = Rect::centered_at(c, w, h).clamp_to(&Rect::unit());
            entries.push(Entry::new(ObjectId(i as u64), r));
            true_pos.push(Point::new(
                r.min.x + tu * r.width(),
                r.min.y + tv * r.height(),
            ));
        }
        let idx = BruteForce::from_entries(entries.iter().copied());
        let user = Point::new(
            reg.min.x + u * reg.width(),
            reg.min.y + v * reg.height(),
        );
        // True k nearest by hidden exact positions.
        let mut order: Vec<usize> = (0..true_pos.len()).collect();
        order.sort_by(|&a, &b| true_pos[a].dist(user).total_cmp(&true_pos[b].dist(user)));
        let list = private_knn_private_data(&idx, &reg, k, FilterCount::Four);
        for &true_idx in order.iter().take(k.min(true_pos.len())) {
            prop_assert!(
                list.candidates.iter().any(|e| e.id.0 == true_idx as u64),
                "target {true_idx} (rank <= {k}) missing from {} candidates",
                list.len()
            );
        }
    }
}
