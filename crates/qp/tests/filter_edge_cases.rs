//! Edge cases of the filter and extended-area steps that the main
//! property suites rarely generate: bisector-misses-edge configurations
//! (possible with 1-/2-filter assignments), degenerate regions, and
//! clustered / collinear target layouts.

use casper_geometry::{Point, Rect};
use casper_index::{BruteForce, DistanceKind, Entry, ObjectId, SpatialIndex};
use casper_qp::{private_nn_private_data, private_nn_public_data, FilterCount, PrivateBoundMode};

fn pt(id: u64, x: f64, y: f64) -> Entry {
    Entry::point(ObjectId(id), Point::new(x, y))
}

fn check_inclusive(targets: &[Entry], region: Rect, samples: u32) {
    let idx = BruteForce::from_entries(targets.iter().copied());
    for fc in FilterCount::ALL {
        let list = private_nn_public_data(&idx, &region, fc);
        for sx in 0..samples {
            for sy in 0..samples {
                let user = Point::new(
                    region.min.x + region.width() * sx as f64 / (samples - 1).max(1) as f64,
                    region.min.y + region.height() * sy as f64 / (samples - 1).max(1) as f64,
                );
                let exact = idx.nearest(user, DistanceKind::Min).unwrap().dist;
                let best = list
                    .candidates
                    .iter()
                    .map(|e| e.mbr.min.dist(user))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (best - exact).abs() < 1e-9,
                    "{fc:?}: user {user:?} exact {exact} vs best {best}"
                );
            }
        }
    }
}

#[test]
fn two_filter_bisector_can_miss_an_edge_and_stay_inclusive() {
    // Both anchor corners' nearest targets sit on the same side, so for
    // some edges the two assigned filters' bisector misses the edge
    // entirely — the fallback single-filter bound must keep inclusiveness.
    let targets = [
        pt(1, 0.05, 0.50), // far left
        pt(2, 0.06, 0.52), // also far left, slightly different
        pt(3, 0.95, 0.95),
        pt(4, 0.93, 0.05),
    ];
    let region = Rect::from_coords(0.45, 0.40, 0.60, 0.60);
    check_inclusive(&targets, region, 6);
}

#[test]
fn all_targets_collinear() {
    let targets: Vec<Entry> = (0..12)
        .map(|i| pt(i, 0.05 + i as f64 * 0.08, 0.5))
        .collect();
    let region = Rect::from_coords(0.3, 0.1, 0.5, 0.3);
    check_inclusive(&targets, region, 5);
}

#[test]
fn all_targets_at_one_point() {
    let targets: Vec<Entry> = (0..5).map(|i| pt(i, 0.7, 0.7)).collect();
    let region = Rect::from_coords(0.2, 0.2, 0.4, 0.4);
    check_inclusive(&targets, region, 4);
}

#[test]
fn target_inside_the_cloaked_region() {
    let targets = vec![pt(1, 0.5, 0.5), pt(2, 0.9, 0.9), pt(3, 0.1, 0.2)];
    let region = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
    check_inclusive(&targets, region, 5);
}

#[test]
fn degenerate_line_shaped_region() {
    // Zero-height cloaked region (e.g. a road segment).
    let targets: Vec<Entry> = (0..10).map(|i| pt(i, i as f64 / 10.0, 0.8)).collect();
    let region = Rect::from_coords(0.2, 0.5, 0.7, 0.5);
    check_inclusive(&targets, region, 8);
}

#[test]
fn region_covering_the_whole_space() {
    let targets: Vec<Entry> = (0..9)
        .map(|i| pt(i, (i % 3) as f64 / 2.0, (i / 3) as f64 / 2.0))
        .collect();
    let region = Rect::unit();
    let idx = BruteForce::from_entries(targets.iter().copied());
    let list = private_nn_public_data(&idx, &region, FilterCount::Four);
    // Everything may be someone's NN here, so all 9 must be candidates.
    assert_eq!(list.len(), 9);
}

#[test]
fn private_data_nested_and_overlapping_regions() {
    // Target regions that contain each other and the query region.
    let targets = [
        Entry::new(ObjectId(1), Rect::from_coords(0.0, 0.0, 1.0, 1.0)), // everything
        Entry::new(ObjectId(2), Rect::from_coords(0.4, 0.4, 0.6, 0.6)), // around query
        Entry::new(ObjectId(3), Rect::from_coords(0.49, 0.49, 0.51, 0.51)), // inside query
    ];
    let idx = BruteForce::from_entries(targets.iter().copied());
    let region = Rect::from_coords(0.45, 0.45, 0.55, 0.55);
    for fc in FilterCount::ALL {
        let list = private_nn_private_data(&idx, &region, fc, PrivateBoundMode::Safe, 0.0);
        // All three could be the nearest buddy; none may be pruned.
        assert_eq!(list.len(), 3, "{fc:?}");
    }
}

#[test]
fn single_target_worlds() {
    for fc in FilterCount::ALL {
        let idx = BruteForce::from_entries([pt(1, 0.33, 0.77)]);
        let region = Rect::from_coords(0.6, 0.1, 0.9, 0.4);
        let list = private_nn_public_data(&idx, &region, fc);
        assert_eq!(list.len(), 1, "{fc:?}: the only target is the answer");
    }
}
