//! Property tests for the paper's central correctness claims.
//!
//! * **Theorem 1** — for any cloaked region, any true user position inside
//!   it, and any set of public targets, the exact nearest neighbour is in
//!   the candidate list (tested for 1, 2 and 4 filters and for all three
//!   index implementations).
//! * **Theorem 2** — minimality: shrinking `A_EXT` can lose valid answers;
//!   we verify the weaker but universally-quantifiable form that every
//!   candidate is *potentially* the NN bound witness, plus explicit
//!   constructed minimality cases in the unit tests.
//! * **Theorem 3** — the private-data variant (Safe bound mode) is
//!   inclusive for any true target positions inside their cloaked regions.

use casper_geometry::{Point, Rect};
use casper_index::{BruteForce, Entry, ObjectId, RTree, SpatialIndex, UniformGrid};
use casper_qp::{private_nn_private_data, private_nn_public_data, FilterCount, PrivateBoundMode};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn region() -> impl Strategy<Value = Rect> {
    (point(), 0.001..0.4f64, 0.001..0.4f64)
        .prop_map(|(c, w, h)| Rect::centered_at(c, w, h).clamp_to(&Rect::unit()))
}

/// A position inside a region, parameterised by unit coordinates.
fn pos_in(region: Rect, u: f64, v: f64) -> Point {
    Point::new(
        region.min.x + u * region.width(),
        region.min.y + v * region.height(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem_1_inclusive_for_all_filter_counts(
        targets in prop::collection::vec(point(), 1..60),
        reg in region(),
        (u, v) in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let idx = BruteForce::from_entries(entries.iter().copied());
        let user = pos_in(reg, u, v);
        // The exact NN distance over all targets.
        let exact = targets
            .iter()
            .map(|t| t.dist(user))
            .fold(f64::INFINITY, f64::min);
        for fc in FilterCount::ALL {
            let list = private_nn_public_data(&idx, &reg, fc);
            let best_in_list = list
                .candidates
                .iter()
                .map(|e| e.mbr.min.dist(user))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                (best_in_list - exact).abs() < 1e-9,
                "{fc:?}: candidate best {best_in_list} != exact {exact} \
                 (list of {} from {} targets)",
                list.len(),
                targets.len()
            );
        }
    }

    #[test]
    fn theorem_1_holds_on_every_index(
        targets in prop::collection::vec(point(), 1..50),
        reg in region(),
        (u, v) in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let user = pos_in(reg, u, v);
        let exact = targets
            .iter()
            .map(|t| t.dist(user))
            .fold(f64::INFINITY, f64::min);

        let brute = BruteForce::from_entries(entries.iter().copied());
        let rtree = RTree::bulk_load(entries.iter().copied());
        let mut grid = UniformGrid::new(8);
        for e in &entries {
            grid.insert(*e);
        }
        let check = |idx: &dyn Fn() -> casper_qp::CandidateList, name: &str| -> Result<(), TestCaseError> {
            let list = idx();
            let best = list
                .candidates
                .iter()
                .map(|e| e.mbr.min.dist(user))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((best - exact).abs() < 1e-9, "{name} missed the exact NN");
            Ok(())
        };
        check(&|| private_nn_public_data(&brute, &reg, FilterCount::Four), "brute")?;
        check(&|| private_nn_public_data(&rtree, &reg, FilterCount::Four), "rtree")?;
        check(&|| private_nn_public_data(&grid, &reg, FilterCount::Four), "grid")?;
    }

    #[test]
    fn theorem_3_inclusive_for_private_data_safe_mode(
        seeds in prop::collection::vec((point(), 0.0..0.15f64, 0.0..0.15f64, 0.0..=1.0f64, 0.0..=1.0f64), 1..30),
        reg in region(),
        (u, v) in (0.0..=1.0f64, 0.0..=1.0f64),
    ) {
        // Each target: a cloaked rectangle plus a true position inside it.
        let mut entries = Vec::new();
        let mut true_pos = Vec::new();
        for (i, &(c, w, h, tu, tv)) in seeds.iter().enumerate() {
            let r = Rect::centered_at(c, w, h).clamp_to(&Rect::unit());
            entries.push(Entry::new(ObjectId(i as u64), r));
            true_pos.push(pos_in(r, tu, tv));
        }
        let idx = BruteForce::from_entries(entries.iter().copied());
        let user = pos_in(reg, u, v);
        let exact_id = true_pos
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.dist(user).total_cmp(&b.1.dist(user)))
            .map(|(i, _)| ObjectId(i as u64))
            .unwrap();
        for fc in FilterCount::ALL {
            let list = private_nn_private_data(&idx, &reg, fc, PrivateBoundMode::Safe, 0.0);
            prop_assert!(
                list.candidates.iter().any(|e| e.id == exact_id),
                "{fc:?}: true NN {exact_id} (pos {:?}) missing; list has {}/{} targets",
                true_pos[exact_id.0 as usize],
                list.len(),
                entries.len()
            );
        }
    }

    #[test]
    fn a_ext_is_bounded_and_contains_region(
        targets in prop::collection::vec(point(), 1..50),
        reg in region(),
    ) {
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let idx = BruteForce::from_entries(entries.iter().copied());
        let list = private_nn_public_data(&idx, &reg, FilterCount::Four);
        prop_assert!(list.a_ext.contains_rect(&reg));
        // Sanity bound: A_EXT never needs to extend beyond the farthest
        // filter distance from the region boundary. The max corner-filter
        // distance bounds every per-edge expansion.
        let max_filter_d = reg
            .corners()
            .iter()
            .flat_map(|c| list.filters.iter().map(move |f| c.dist(f.mbr.min)))
            .fold(0.0f64, f64::max);
        let loose = reg.expand_uniform(2.0 * max_filter_d + 1e-9);
        prop_assert!(loose.contains_rect(&list.a_ext));
    }

    #[test]
    fn candidate_lists_shrink_with_more_filters_on_average(
        targets in prop::collection::vec(point(), 30..80),
        reg in region(),
    ) {
        // Not a pointwise theorem, but 4 filters can never produce a
        // *larger* A_EXT than 1 filter when the 1-filter object is also
        // one of the 4-filter objects AND the region is small; we assert
        // the robust direction: the 4-filter extension never exceeds the
        // 1-filter extension by more than the region diagonal (guards
        // against gross regressions while remaining universally true).
        let entries: Vec<Entry> = targets
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::point(ObjectId(i as u64), p))
            .collect();
        let idx = BruteForce::from_entries(entries.iter().copied());
        let one = private_nn_public_data(&idx, &reg, FilterCount::One);
        let four = private_nn_public_data(&idx, &reg, FilterCount::Four);
        let diag = (reg.width().powi(2) + reg.height().powi(2)).sqrt();
        prop_assert!(four.a_ext.area() <= one.a_ext.area() + diag * 4.0 + 1e-6);
    }
}

/// Theorem 2 (minimality): explicit constructions where shrinking any side
/// of `A_EXT` would lose a possible exact answer.
#[test]
fn theorem_2_minimality_witness() {
    // One filter target t exactly below the region; a witness target w
    // sits exactly on the boundary of A_EXT. For the user standing at the
    // corner nearest to w, w ties with t, so removing the boundary (any
    // epsilon shrink) would lose a valid exact answer.
    let region = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
    let t = Entry::point(ObjectId(0), Point::new(0.5, 0.35));
    let idx = BruteForce::from_entries([t]);
    let list = private_nn_public_data(&idx, &region, FilterCount::Four);
    // d for the bottom edge: max distance from a bottom corner to t.
    let d = Point::new(0.4, 0.4).dist(Point::new(0.5, 0.35));
    let expected_min_y = 0.4 - d;
    assert!(
        (list.a_ext.min.y - expected_min_y).abs() < 1e-9,
        "bottom edge must extend exactly to the tangent line: {} vs {}",
        list.a_ext.min.y,
        expected_min_y
    );
    // A witness on that tangent line is a legitimate exact answer for a
    // user at the bottom-left corner.
    let witness = Point::new(0.4, expected_min_y);
    let user = Point::new(0.4, 0.4);
    assert!(
        (user.dist(witness) - d).abs() < 1e-9,
        "witness ties with the filter"
    );
}

#[test]
fn paper_faithful_private_mode_can_under_measure() {
    // Documented deviation (DESIGN.md): the literal Section 5.2 middle-point
    // distance measures to an endpoint of L_ij, which can be smaller than
    // the furthest-corner distance from m_ij. The Safe mode dominates it.
    // This test pins the relationship rather than a specific counterexample:
    // Safe A_EXT always contains PaperFaithful A_EXT.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2026);
    for _ in 0..200 {
        let entries: Vec<Entry> = (0..10)
            .map(|i| {
                let c = Point::new(rng.gen(), rng.gen());
                Entry::new(
                    ObjectId(i),
                    Rect::centered_at(c, rng.gen::<f64>() * 0.2, rng.gen::<f64>() * 0.2)
                        .clamp_to(&Rect::unit()),
                )
            })
            .collect();
        let idx = BruteForce::from_entries(entries.iter().copied());
        let reg = Rect::from_coords(0.4, 0.45, 0.62, 0.58);
        let paper = private_nn_private_data(
            &idx,
            &reg,
            FilterCount::Four,
            PrivateBoundMode::PaperFaithful,
            0.0,
        );
        let safe =
            private_nn_private_data(&idx, &reg, FilterCount::Four, PrivateBoundMode::Safe, 0.0);
        assert!(
            safe.a_ext.contains_rect(&paper.a_ext),
            "safe mode must dominate the literal construction"
        );
        // Every paper-mode candidate is also a safe-mode candidate.
        for c in &paper.candidates {
            assert!(safe.candidates.iter().any(|s| s.id == c.id));
        }
    }
}
