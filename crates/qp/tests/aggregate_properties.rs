//! Property tests for the density surface: mass conservation and
//! agreement with the exact range expectation under arbitrary region
//! populations.

use casper_geometry::{Point, Rect};
use casper_index::{BruteForce, Entry, ObjectId};
use casper_qp::{public_range_over_private, DensityGrid};
use proptest::prelude::*;

fn region() -> impl Strategy<Value = Rect> {
    (0.0..1.0f64, 0.0..1.0f64, 0.001..0.3f64, 0.001..0.3f64)
        .prop_map(|(x, y, w, h)| Rect::centered_at(Point::new(x, y), w, h).clamp_to(&Rect::unit()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mass_is_always_conserved(
        regions in prop::collection::vec(region(), 1..40),
        resolution in 2usize..24,
    ) {
        let idx = BruteForce::from_entries(
            regions
                .iter()
                .enumerate()
                .map(|(i, &r)| Entry::new(ObjectId(i as u64), r)),
        );
        let g = DensityGrid::build(&idx, resolution);
        prop_assert!(
            (g.total() - regions.len() as f64).abs() < 1e-6,
            "total {} != {}",
            g.total(),
            regions.len()
        );
        // No cell can hold more mass than the population.
        let (_, peak) = g.hottest();
        prop_assert!(peak <= regions.len() as f64 + 1e-9);
        prop_assert!(peak >= 0.0);
    }

    #[test]
    fn grid_aligned_queries_match_exact_expectation(
        regions in prop::collection::vec(region(), 1..25),
        qx in 0u32..4,
        qy in 0u32..4,
    ) {
        let idx = BruteForce::from_entries(
            regions
                .iter()
                .enumerate()
                .map(|(i, &r)| Entry::new(ObjectId(i as u64), r)),
        );
        // Query = one cell of a 4x4 partition; build the surface at a
        // resolution that refines it (8x8), so the approximation is exact.
        let q = Rect::from_coords(
            qx as f64 * 0.25,
            qy as f64 * 0.25,
            (qx + 1) as f64 * 0.25,
            (qy + 1) as f64 * 0.25,
        );
        let g = DensityGrid::build(&idx, 8);
        let exact = public_range_over_private(&idx, &q).expected_count;
        prop_assert!(
            (g.expected_in(&q) - exact).abs() < 1e-6,
            "surface {} vs exact {exact}",
            g.expected_in(&q)
        );
    }

    #[test]
    fn count_bounds_sandwich_the_expectation(
        regions in prop::collection::vec(region(), 1..40),
        q in region(),
    ) {
        let idx = BruteForce::from_entries(
            regions
                .iter()
                .enumerate()
                .map(|(i, &r)| Entry::new(ObjectId(i as u64), r)),
        );
        let ans = public_range_over_private(&idx, &q);
        prop_assert!(ans.min_count() <= ans.max_count());
        prop_assert!(ans.expected_count <= ans.max_count() as f64 + 1e-9);
        prop_assert!(ans.expected_count + 1e-9 >= ans.min_count() as f64);
    }
}
