//! Self-tuning filter selection: the framework learns whether 1, 2 or 4
//! filters minimise end-to-end latency for the *current* workload —
//! Section 6.3's trade-off, operationalised.
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```
//!
//! Two phases: relaxed privacy over a slow channel (transmission cheap →
//! fewer filters can win), then strict privacy (huge candidate lists →
//! 4 filters win). The policy adapts across the switch.

use casper::core::FilterPolicy;
use casper::mobility::uniform_targets;
use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 4_000;
const TARGETS: usize = 10_000;

fn run_phase(
    casper: &mut Casper<AdaptivePyramid>,
    policy: &mut FilterPolicy,
    queries: usize,
    rng: &mut StdRng,
) -> [u32; 3] {
    let mut chosen = [0u32; 3];
    for _ in 0..queries {
        let uid = UserId(rng.gen_range(0..USERS as u64));
        let fc = policy.choose();
        chosen[match fc {
            FilterCount::One => 0,
            FilterCount::Two => 1,
            FilterCount::Four => 2,
        }] += 1;
        if let Some(answer) = casper.query_nn_with(uid, fc) {
            policy.record(fc, answer.candidates, answer.breakdown.query);
        }
    }
    chosen
}

fn main() {
    let mut rng = StdRng::seed_from_u64(64);
    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));
    casper.load_targets(
        uniform_targets(TARGETS, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p)),
    );
    // Phase 1: everyone relaxed.
    for i in 0..USERS {
        casper.register_user(
            UserId(i as u64),
            Profile::new(2, 0.0),
            Point::new(rng.gen(), rng.gen()),
        );
    }
    let mut policy = FilterPolicy::new(TransmissionModel::default());
    let phase1 = run_phase(&mut casper, &mut policy, 600, &mut rng);
    println!("=== adaptive filter tuning ===");
    println!(
        "phase 1 (k = 2, tiny lists)  : chose 1f {} | 2f {} | 4f {}",
        phase1[0], phase1[1], phase1[2]
    );

    // Phase 2: everyone turns paranoid.
    for i in 0..USERS {
        casper.change_profile(UserId(i as u64), Profile::new(200, 0.0));
    }
    let phase2 = run_phase(&mut casper, &mut policy, 600, &mut rng);
    println!(
        "phase 2 (k = 200, huge lists): chose 1f {} | 2f {} | 4f {}",
        phase2[0], phase2[1], phase2[2]
    );
    for fc in FilterCount::ALL {
        println!(
            "  estimated end-to-end for {fc:?}: {:.1} us",
            policy.estimated_total(fc) * 1e6
        );
    }
    println!(
        "(expected: the strict phase shifts choices toward 4 filters, whose \
         smaller candidate lists win once transmission dominates)"
    );
}
