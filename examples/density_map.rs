//! An anonymous city heat map: the administrator builds a density surface
//! from cloaked regions only, plus per-user privacy scoring.
//!
//! ```text
//! cargo run --release --example density_map
//! ```

use casper::anonymizer::analysis;
use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 5_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let network = NetworkBuilder::new().build(&mut rng);
    let generator = MovingObjectGenerator::new(network, USERS, &mut rng);

    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));
    for i in 0..USERS {
        casper.register_user(
            UserId(i as u64),
            Profile::new(rng.gen_range(5..=50), 0.0),
            generator.object(i).position(),
        );
    }

    // The server-side view: cloaked regions only. Build the surface.
    let grid = casper.server().density(16);
    println!("=== anonymous density map (16x16, {USERS} users) ===");
    for y in (0..16).rev() {
        let row: String = (0..16)
            .map(|x| match grid.at(x, y) {
                v if v >= 40.0 => '#',
                v if v >= 20.0 => '+',
                v if v >= 5.0 => '.',
                _ => ' ',
            })
            .collect();
        println!("|{row}|");
    }
    let ((hx, hy), peak) = grid.hottest();
    println!(
        "total mass {:.1} (= users), hottest cell ({hx},{hy}) ≈ {peak:.1} users",
        grid.total()
    );

    // Privacy scoring: how protected is a sample user?
    let lowest_cell = 1.0 / 65_536.0; // 9-level pyramid, lowest level
    let sample = casper.anonymizer().cloak_region_of(UserId(0)).unwrap();
    let report = analysis::analyze(&sample, lowest_cell);
    println!("\nuser 0 privacy report:");
    println!(
        "  k-anonymity           : {} users ({:.1} bits)",
        report.k_anonymity, report.identity_entropy_bits
    );
    println!(
        "  cloaked area          : {:.5}% of the county ({:.1} bits vs one cell)",
        report.area * 100.0,
        report.location_entropy_bits
    );
    println!(
        "  best adversary guess  : off by {:.4} on average",
        report.expected_guess_error
    );
}
