//! Durability walkthrough: write → kill → recover → query.
//!
//! ```text
//! cargo run --release --example durable_restart
//! ```
//!
//! * a sharded anonymizer engine is recovered (bootstrapped) from an
//!   empty on-disk directory, and a town's worth of users registers
//!   through the write-ahead log;
//! * the process "crashes" — the engine is dropped with live state in
//!   memory, and to make it interesting a torn half-record is appended
//!   to the WAL, as a power cut mid-write would;
//! * a fresh engine recovers from the directory: newest checkpoint,
//!   WAL-tail replay, torn-tail truncation, boot-epoch bump — then
//!   proves the recovered pyramid still cloaks correctly.

use std::sync::Arc;

use casper::core::durability::{verify_recovery, Storage};
use casper::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("casper-durable-{}", std::process::id()));
    let storage = Arc::new(DirStorage::open(&dir).expect("open durability dir"));
    let cfg = DurabilityConfig {
        checkpoint_every: Some(64),
    };

    // --- first life: bootstrap, register, move ---------------------
    let (engine, born) =
        recover_sharded_engine(storage.clone(), cfg, 8, 2, 2).expect("bootstrap from empty dir");
    println!(
        "boot epoch {}: empty start (checkpoint: {:?}, replayed: {})",
        born.boot_epoch, born.checkpoint_seq, born.replayed
    );

    let users: Vec<_> = (0..300u64)
        .map(|i| {
            (
                UserId(i),
                Profile::new(3 + (i % 8) as u32, 0.0),
                Point::new((i as f64 * 0.377) % 1.0, (i as f64 * 0.211) % 1.0),
            )
        })
        .collect();
    engine.register_batch(users);
    for i in 0..100u64 {
        engine
            .anonymizer()
            .try_update_location(UserId(i), Point::new((i as f64 * 0.13) % 1.0, 0.42))
            .expect("durable move");
    }
    println!(
        "registered 300 users + 100 moves; durable through seq {}",
        engine.anonymizer().durable_seq()
    );

    // --- the crash -------------------------------------------------
    // Drop the engine: every in-memory structure is gone. Then tear the
    // log the way a power cut does — a half-written record at the tail.
    drop(engine);
    let torn_wal = storage
        .list()
        .expect("list")
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .max()
        .expect("a WAL file exists");
    storage
        .append(&torn_wal, &[0x00, 0x00, 0x00, 0x19, 0xBA])
        .expect("tear the tail");
    println!("crashed; appended a torn half-record to {torn_wal}");

    // --- second life: recover and prove it -------------------------
    let (engine, report) =
        recover_sharded_engine(storage, cfg, 8, 2, 2).expect("recover from crash");
    println!(
        "boot epoch {}: checkpoint at seq {:?} ({} users), replayed {} ops, \
         truncated {} torn bytes, last seq {}, took {:?}",
        report.boot_epoch,
        report.checkpoint_seq,
        report.checkpoint_users,
        report.replayed,
        report.truncated_bytes,
        report.last_seq,
        report.duration,
    );
    assert_eq!(report.boot_epoch, born.boot_epoch + 1);
    assert!(report.truncated_bytes > 0, "the torn record was discarded");
    assert_eq!(engine.anonymizer().user_count(), 300);

    let verified = verify_recovery(engine.anonymizer(), usize::MAX).expect("invariants hold");
    println!(
        "verified: {} users census-checked, {} re-cloaked successfully",
        verified.users, verified.cloaks_checked
    );

    let region = engine
        .anonymizer()
        .cloak(UserId(7))
        .expect("user 7 survived the crash");
    println!(
        "user 7 cloaks to {:?} covering {} users (area {:.5})",
        region.rect,
        region.user_count,
        region.area()
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
}
