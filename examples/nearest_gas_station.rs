//! Private queries over public data, at city scale (the paper's headline
//! scenario and Figure 4's motivating example).
//!
//! ```text
//! cargo run --release --example nearest_gas_station
//! ```
//!
//! Users move along a synthetic road network (the Brinkhoff-style
//! generator); 2 000 gas stations are public data. For a sample of users
//! the example compares three server strategies:
//!
//! * the naive "answer with the NN of the region centre" (Figure 4b),
//! * the naive "ship every station to the phone" (Figure 4c),
//! * Casper's candidate list with 1, 2 and 4 filters.

use casper::baselines::{center_nn, ship_all};
use casper::mobility::uniform_targets;
use casper::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const USERS: usize = 2_000;
const STATIONS: usize = 2_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(2006);

    // Build the moving-user population.
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, USERS, &mut rng);

    // Anonymizer with the paper's default profile ranges.
    let mut anonymizer = AdaptiveAnonymizer::adaptive(9);
    for i in 0..USERS {
        let profile = Profile::new(
            1 + (i % 50) as u32,           // k in [1, 50]
            5e-5 + (i % 10) as f64 * 5e-6, // A_min in [0.005%, 0.01%]
        );
        anonymizer.register(UserId(i as u64), profile, generator.object(i).position());
    }
    // Let the city drive around for a while.
    for _ in 0..10 {
        for (i, pos) in generator.tick(1.0, &mut rng) {
            anonymizer.update_location(UserId(i as u64), pos);
        }
    }

    // Public data: gas stations, indexed at the server.
    let stations = RTree::bulk_load(
        uniform_targets(STATIONS, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Entry::point(ObjectId(i as u64), p)),
    );

    let client = CasperClient::new();
    let transmission = TransmissionModel::default();
    let sample = 500;
    let mut wrong_naive = 0usize;
    let mut sizes = [0usize; 3];

    for i in 0..sample {
        let uid = UserId(i as u64);
        let true_pos = generator.object(i).position();
        let query = anonymizer.cloak_query(uid).expect("registered");

        // Ground truth (never computable at the real server!).
        let exact = stations.nearest(true_pos, DistanceKind::Min).unwrap().entry;

        // Naive strategy 1: centre NN.
        let naive = center_nn(&stations, &query.region).unwrap();
        if naive.id != exact.id {
            wrong_naive += 1;
        }

        // Casper, all three filter variants. Each list must contain the
        // exact answer (Theorem 1) — verified here on every query.
        for (slot, fc) in FilterCount::ALL.iter().enumerate() {
            let list = private_nn_public_data(&stations, &query.region, *fc);
            sizes[slot] += list.len();
            let refined = client.refine_nn(true_pos, &list).unwrap();
            assert_eq!(refined.id, exact.id, "inclusiveness violated!");
        }
    }

    let all = ship_all(&stations).len();
    println!("=== nearest gas station, {sample} private queries ===");
    println!(
        "naive centre-NN  : {:5.1}% wrong answers, 1 record sent",
        100.0 * wrong_naive as f64 / sample as f64
    );
    println!(
        "naive ship-all   :   0.0% wrong, {all} records sent ({:?} on the wire)",
        transmission.time_for_records(all)
    );
    for (slot, name) in ["1 filter", "2 filters", "4 filters"].iter().enumerate() {
        let avg = sizes[slot] as f64 / sample as f64;
        println!(
            "casper {name:9}:   0.0% wrong, {avg:6.1} records avg ({:?} on the wire)",
            transmission.time_for_records(avg.round() as usize)
        );
    }
    println!("(every Casper candidate list contained the exact answer — checked)");
}
