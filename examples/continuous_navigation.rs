//! Continuous nearest-neighbour monitoring while driving: "keep showing me
//! my nearest gas station" — without ever revealing where the car is.
//!
//! ```text
//! cargo run --release --example continuous_navigation
//! ```
//!
//! The car follows road-network shortest paths; the continuous query
//! re-contacts the server only when the car's *cloaked region* changes
//! (i.e. it crosses a pyramid cell), and reuses the candidate list in
//! between. The example reports the saving and verifies every answer
//! against a fresh snapshot query.

use casper::mobility::uniform_targets;
use casper::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, 200, &mut rng);

    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));
    casper.load_targets(
        uniform_targets(1_000, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p)),
    );
    for i in 0..200 {
        casper.register_user(
            UserId(i as u64),
            Profile::new(5, 0.0),
            generator.object(i).position(),
        );
    }

    // Car 0 navigates with a continuous query.
    let car = UserId(0);
    let mut monitor = casper.continuous_nn(car);
    let mut answer_changes = 0usize;
    let mut last_answer: Option<ObjectId> = None;

    const TICKS: usize = 200;
    for _ in 0..TICKS {
        for (i, pos) in generator.tick(0.2, &mut rng) {
            casper.move_user(UserId(i as u64), pos);
        }
        let current = casper.refresh_continuous(&mut monitor).expect("registered");
        // Cross-check against a fresh snapshot query.
        let fresh = casper.query_nn(car).unwrap().exact.unwrap();
        assert_eq!(current.id, fresh.id, "continuous answer must stay exact");
        if last_answer != Some(current.id) {
            answer_changes += 1;
            last_answer = Some(current.id);
        }
    }

    println!("=== continuous navigation, {TICKS} ticks ===");
    println!("server round trips   : {}", monitor.reevaluations);
    println!("cached refreshes     : {}", monitor.reuses);
    println!(
        "round trips saved    : {:.1}%",
        100.0 * monitor.reuse_ratio()
    );
    println!("nearest-station flips: {answer_changes}");
    println!("(every refresh verified against a fresh snapshot query)");
}
