//! Quickstart: the smallest complete Casper round trip.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! One user, a handful of gas stations, one private nearest-neighbour
//! query — and a look at what the untrusted server actually saw.

use casper::prelude::*;

fn main() {
    // 1. Assemble the framework: adaptive anonymizer over a 9-level
    //    pyramid (the paper's default), privacy-aware server, client.
    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));

    // 2. The server loads public data — nobody hides gas stations.
    casper.load_targets([
        (ObjectId(1), Point::new(0.12, 0.33)),
        (ObjectId(2), Point::new(0.25, 0.31)),
        (ObjectId(3), Point::new(0.68, 0.72)),
        (ObjectId(4), Point::new(0.81, 0.20)),
        (ObjectId(5), Point::new(0.45, 0.90)),
    ]);

    // 3. Alice registers. Her privacy profile (k = 3, A_min = 0.1% of the
    //    county) means: "blur me among at least 3 users, inside at least
    //    0.1% of the space". Her exact position goes ONLY to the trusted
    //    anonymizer.
    let alice = UserId(1);
    casper.register_user(alice, Profile::new(3, 0.001), Point::new(0.22, 0.35));

    // A couple of other users so Alice has a crowd to hide in.
    casper.register_user(UserId(2), Profile::new(1, 0.0), Point::new(0.24, 0.36));
    casper.register_user(UserId(3), Profile::new(1, 0.0), Point::new(0.21, 0.33));

    // 4. "Where is my nearest gas station?"
    let answer = casper.query_nn(alice).expect("alice is registered");

    println!("candidate list size : {}", answer.candidates);
    println!(
        "exact nearest       : {} (refined locally on Alice's phone)",
        answer.exact.expect("server has targets").id
    );
    println!(
        "time breakdown      : anonymizer {:?}, query {:?}, transmission {:?}",
        answer.breakdown.anonymizer, answer.breakdown.query, answer.breakdown.transmission
    );

    // 5. What did the server learn about Alice? Only a cloaked region.
    let stored = casper.admin_count(&Rect::unit());
    println!(
        "server-side view    : {} anonymous region(s), none smaller than {:.4}% of the space",
        stored.max_count(),
        stored
            .overlapping
            .iter()
            .map(|e| e.mbr.area())
            .fold(f64::INFINITY, f64::min)
            * 100.0
    );
}
