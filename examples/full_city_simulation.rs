//! The whole system in one run: a simulated city day.
//!
//! ```text
//! cargo run --release --example full_city_simulation
//! ```
//!
//! * 8 000 residents move along a synthetic road network, streaming
//!   location updates through the adaptive anonymizer;
//! * the server holds categorised public data (gas stations, hospitals,
//!   restaurants) and the residents' cloaked regions;
//! * residents fire category-scoped nearest-neighbour queries through the
//!   self-tuning filter policy; commuters run continuous queries;
//! * the city's traffic office polls district counts and a density map;
//! * at the end the server state is snapshotted, restored, and verified.

use casper::core::{snapshot, Category, FilterPolicy};
use casper::mobility::uniform_targets;
use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

const RESIDENTS: usize = 8_000;
const TICKS: usize = 20;

fn main() {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(20060912); // the paper's VLDB date
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, RESIDENTS, &mut rng);

    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));

    // Categorised public data.
    let categories = [
        (Category(1), "gas stations", 800),
        (Category(2), "hospitals", 60),
        (Category(3), "restaurants", 2_400),
    ];
    let mut next_id = 0u64;
    for &(cat, _, n) in &categories {
        for p in uniform_targets(n, &mut rng) {
            // Registered directly at the server — public data bypasses
            // the anonymizer (Figure 1).
            casper_server_upsert(&mut casper, ObjectId(next_id), p, cat);
            next_id += 1;
        }
    }

    // Residents register with heterogeneous privacy preferences.
    for i in 0..RESIDENTS {
        let profile = match i % 10 {
            0..=5 => Profile::new(rng.gen_range(2..=20), 0.0), // casual
            6..=8 => Profile::new(rng.gen_range(20..=80), 5e-5), // cautious
            _ => Profile::new(rng.gen_range(80..=200), 5e-4),  // paranoid
        };
        casper.register_user(UserId(i as u64), profile, generator.object(i).position());
    }

    let mut policy = FilterPolicy::new(TransmissionModel::default());
    let mut commuter = casper.continuous_nn(UserId(1));
    let district = Rect::from_coords(0.3, 0.3, 0.6, 0.6);
    let mut queries = 0usize;
    let mut wrong = 0usize;

    for tick in 0..TICKS {
        // Everyone drives; the anonymizer re-cloaks movers.
        for (i, pos) in generator.tick(1.0, &mut rng) {
            casper.move_user(UserId(i as u64), pos);
        }
        // A wave of private category queries through the tuned policy.
        for _ in 0..50 {
            let uid = UserId(rng.gen_range(0..RESIDENTS as u64));
            let cat = categories[rng.gen_range(0..categories.len())].0;
            let fc = policy.choose();
            let query = match casper_query_category(&mut casper, uid, cat, fc) {
                Some(q) => q,
                None => continue,
            };
            policy.record(fc, query.0, query.1);
            queries += 1;
            if !query.2 {
                wrong += 1;
            }
        }
        // The commuter's continuous query stays fresh.
        casper.refresh_continuous(&mut commuter).unwrap();
        // Traffic office: anonymous district analytics.
        if tick % 5 == 4 {
            let count = casper.admin_count(&district);
            let density = casper.server().density(8);
            println!(
                "tick {tick:>2}: district expects {:7.1} cars in [{}..{}]; hottest 1/64 cell ≈ {:.0}",
                count.expected_count,
                count.min_count(),
                count.max_count(),
                density.hottest().1
            );
        }
    }

    println!("\nprivate category queries : {queries} ({wrong} wrong — must be 0)");
    assert_eq!(wrong, 0, "every refined answer must be exact");
    println!(
        "continuous query reuse   : {:.0}% of {} refreshes",
        100.0 * commuter.reuse_ratio(),
        commuter.reevaluations + commuter.reuses
    );

    // Snapshot / restore round trip.
    let image = snapshot::save(casper.server());
    let restored = snapshot::load(image.clone()).expect("snapshot must load");
    assert_eq!(restored.public_count(), casper.server().public_count());
    assert_eq!(restored.private_count(), casper.server().private_count());
    println!(
        "server snapshot          : {} KiB, restored and verified",
        image.len() / 1024
    );
    println!(
        "simulated {TICKS} ticks with {RESIDENTS} residents in {:?}",
        started.elapsed()
    );
}

/// Registers a categorised target (helper keeping main readable).
fn casper_server_upsert(
    casper: &mut Casper<AdaptivePyramid>,
    id: ObjectId,
    pos: Point,
    cat: Category,
) {
    casper.server_mut().upsert_public_target_in(id, pos, cat);
}

/// One category-scoped private query: returns (candidates, query time,
/// answer verified exact).
fn casper_query_category(
    casper: &mut Casper<AdaptivePyramid>,
    uid: UserId,
    cat: Category,
    fc: FilterCount,
) -> Option<(usize, std::time::Duration, bool)> {
    let query = casper.anonymizer_mut().cloak_query(uid)?;
    let (list, stats) = casper.server().nn_public_in(&query.region, fc, cat);
    let pos = casper.anonymizer().pyramid().position_of(uid)?;
    let refined = CasperClient::new().refine_nn(pos, &list)?;
    // Oracle check against the category's full contents.
    let exact_ok = {
        let all = casper
            .server()
            .nn_public_in(&Rect::unit(), FilterCount::One, cat)
            .0;
        let best = all
            .candidates
            .iter()
            .min_by(|a, b| a.mbr.min.dist(pos).total_cmp(&b.mbr.min.dist(pos)))?;
        (best.mbr.min.dist(pos) - refined.mbr.min.dist(pos)).abs() < 1e-9
    };
    Some((list.len(), stats.processing, exact_ok))
}
