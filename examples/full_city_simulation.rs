//! The whole system in one run: a simulated city day on the concurrent
//! request plane.
//!
//! ```text
//! cargo run --release --example full_city_simulation
//! ```
//!
//! * 8 000 residents move along a synthetic road network; every tick's
//!   updates go through [`ParallelEngine::update_batch`], which fans them
//!   out over the worker pool by shard;
//! * the server holds categorised public data (gas stations, hospitals,
//!   restaurants) and the residents' cloaked regions;
//! * residents fire category-scoped nearest-neighbour queries as typed
//!   [`Request::QueryNn`] commands through the self-tuning filter policy;
//! * the city's traffic office polls district counts and a density map;
//! * at the end the server state is snapshotted, restored, and verified.

use casper::core::{snapshot, Category, FilterPolicy};
use casper::mobility::uniform_targets;
use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

const RESIDENTS: usize = 8_000;
const TICKS: usize = 20;
const WORKERS: usize = 4;

fn main() {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(20060912); // the paper's VLDB date
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, RESIDENTS, &mut rng);

    // One engine: a sharded anonymizer (a 9-level pyramid split at level
    // 2 → 16 shards) behind the typed request plane, driven by a worker
    // pool.
    let engine = ParallelEngine::sharded(9, 2, WORKERS);

    // Categorised public data — registered directly at the server;
    // public data bypasses the anonymizer (Figure 1).
    let categories = [
        (Category(1), "gas stations", 800),
        (Category(2), "hospitals", 60),
        (Category(3), "restaurants", 2_400),
    ];
    let mut next_id = 0u64;
    for &(cat, _, n) in &categories {
        for p in uniform_targets(n, &mut rng) {
            engine.with_server_mut(|s| s.upsert_public_target_in(ObjectId(next_id), p, cat));
            next_id += 1;
        }
    }

    // Residents register with heterogeneous privacy preferences — one
    // batch, partitioned across the pool by shard.
    let residents: Vec<(UserId, Profile, Point)> = (0..RESIDENTS)
        .map(|i| {
            let profile = match i % 10 {
                0..=5 => Profile::new(rng.gen_range(2..=20), 0.0), // casual
                6..=8 => Profile::new(rng.gen_range(20..=80), 5e-5), // cautious
                _ => Profile::new(rng.gen_range(80..=200), 5e-4),  // paranoid
            };
            (UserId(i as u64), profile, generator.object(i).position())
        })
        .collect();
    let registered = engine.register_batch(residents);
    assert_eq!(registered, RESIDENTS);

    let mut policy = FilterPolicy::new(TransmissionModel::default());
    let district = Rect::from_coords(0.3, 0.3, 0.6, 0.6);
    let mut queries = 0usize;
    let mut wrong = 0usize;

    for tick in 0..TICKS {
        // Everyone drives; one batch per tick re-cloaks all movers in
        // parallel, shard by shard.
        let moves: Vec<(UserId, Point)> = generator
            .tick(1.0, &mut rng)
            .into_iter()
            .map(|(i, pos)| (UserId(i as u64), pos))
            .collect();
        engine.update_batch(moves);

        // A wave of private category queries through the tuned policy.
        for _ in 0..50 {
            let uid = UserId(rng.gen_range(0..RESIDENTS as u64));
            let cat = categories[rng.gen_range(0..categories.len())].0;
            let fc = policy.choose();
            let Response::Outcome(Some(outcome)) = engine.submit(Request::QueryNn {
                uid,
                filters: Some(fc),
                category: Some(cat),
            }) else {
                continue;
            };
            let Some(answer) = outcome.answered() else {
                continue;
            };
            policy.record(fc, answer.candidates, answer.breakdown.query);
            queries += 1;
            if !verify_exact(&engine, uid, cat, &answer) {
                wrong += 1;
            }
        }

        // Traffic office: anonymous district analytics, straight to the
        // server tier of the same request plane.
        if tick % 5 == 4 {
            let Response::Count(count) = engine.submit(Request::AdminCount { area: district })
            else {
                unreachable!("the plane always counts");
            };
            let density = engine.with_server(|s| s.density(8));
            println!(
                "tick {tick:>2}: district expects {:7.1} cars in [{}..{}]; hottest 1/64 cell ≈ {:.0}",
                count.expected_count,
                count.min_count(),
                count.max_count(),
                density.hottest().1
            );
        }
    }

    println!("\nprivate category queries : {queries} ({wrong} wrong — must be 0)");
    assert_eq!(wrong, 0, "every refined answer must be exact");

    // Snapshot / restore round trip, through the shared server plane.
    let image = engine.with_server(snapshot::save);
    let restored = snapshot::load(image.clone()).expect("snapshot must load");
    assert_eq!(
        restored.public_count(),
        engine.with_server(|s| s.public_count())
    );
    assert_eq!(
        restored.private_count(),
        engine.with_server(|s| s.private_count())
    );
    println!(
        "server snapshot          : {} KiB, restored and verified",
        image.len() / 1024
    );
    println!(
        "simulated {TICKS} ticks with {RESIDENTS} residents on {WORKERS} workers in {:?}",
        started.elapsed()
    );
}

/// Oracle check: the refined answer must be the category's true nearest
/// target to the user's exact position.
fn verify_exact(
    engine: &ParallelEngine<ShardedAnonymizer>,
    uid: UserId,
    cat: Category,
    answer: &EndToEndAnswer,
) -> bool {
    let Some(refined) = answer.exact else {
        return false;
    };
    let Some(pos) = engine.anonymizer().position_of(uid) else {
        return false;
    };
    engine.with_server(|s| {
        let all = s.nn_public_in(&Rect::unit(), FilterCount::One, cat).0;
        let Some(best) = all
            .candidates
            .iter()
            .min_by(|a, b| a.mbr.min.dist(pos).total_cmp(&b.mbr.min.dist(pos)))
        else {
            return false;
        };
        (best.mbr.min.dist(pos) - refined.mbr.min.dist(pos)).abs() < 1e-9
    })
}
