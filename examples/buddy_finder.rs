//! Private queries over private data: "where is my nearest buddy?"
//! (Section 5.2).
//!
//! ```text
//! cargo run --release --example buddy_finder
//! ```
//!
//! Every participant is private: the querying user is cloaked AND the
//! buddies are stored as cloaked regions. The server matches regions
//! against regions; only the client, knowing her own exact position,
//! ranks the candidate buddies.

use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const BUDDIES: usize = 1_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));

    // A social network's worth of buddies, each with her own privacy
    // preference: some relaxed (k=1), some paranoid (k=40 + area floor).
    let mut true_positions = Vec::with_capacity(BUDDIES);
    for i in 0..BUDDIES {
        let pos = Point::new(rng.gen(), rng.gen());
        let profile = if i % 3 == 0 {
            Profile::new(40, 1e-3) // paranoid
        } else {
            Profile::new(1 + (i % 10) as u32, 0.0)
        };
        casper.register_user(UserId(i as u64), profile, pos);
        true_positions.push(pos);
    }

    // Alice (user 0) asks for her nearest buddy.
    let alice = UserId(0);
    let answer = casper.query_nn_private(alice).expect("alice is registered");
    let suggested = answer.exact.expect("there are buddies");

    // Ground truth for comparison (uses information the server never
    // has: everyone's exact position).
    let alice_pos = true_positions[0];
    let (truly_nearest, true_dist) = true_positions
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, p)| (i, p.dist(alice_pos)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();

    let suggested_dist = true_positions[suggested.id.0 as usize].dist(alice_pos);
    println!("=== buddy finder ===");
    println!("candidate buddies shipped : {}", answer.candidates);
    println!(
        "suggested buddy           : user {} (true distance {:.4})",
        suggested.id.0, suggested_dist
    );
    println!(
        "actual nearest buddy      : user {truly_nearest} (true distance {:.4})",
        true_dist
    );
    println!(
        "suggestion within         : {:.1}x of optimal (exactness is impossible when \
         buddies are cloaked — the server and even Alice only see regions)",
        suggested_dist / true_dist.max(1e-12)
    );
    // The inclusiveness guarantee still holds at the region level: the
    // truly nearest buddy's *region* is in the candidate list.
    // (Safe bound mode; Theorem 3.)
    println!(
        "candidate list covers the true nearest buddy: {}",
        answer.candidates >= 1 && suggested_dist <= 2.0_f64.sqrt()
    );
}
