//! Public queries over private data: a traffic administrator counts cars
//! in a district without ever learning where any individual car is.
//!
//! ```text
//! cargo run --release --example traffic_monitor
//! ```
//!
//! Cars stream location updates through the anonymizer; the server only
//! holds cloaked regions. The administrator's count query returns
//! `[min, expected, max]` bounds whose expected value tracks the true
//! count (which this example knows only because it runs the simulation).

use casper::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const CARS: usize = 3_000;
const TICKS: usize = 15;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, CARS, &mut rng);

    let mut casper = Casper::new(AdaptiveAnonymizer::adaptive(9));
    for i in 0..CARS {
        // All cars want k = 10 anonymity.
        casper.register_user(
            UserId(i as u64),
            Profile::new(10, 0.0),
            generator.object(i).position(),
        );
    }

    // The monitored district: the downtown quadrant.
    let district = Rect::from_coords(0.25, 0.25, 0.55, 0.55);

    println!("=== traffic monitor, district {district:?} ===");
    println!(
        "{:>5} {:>8} {:>10} {:>8} {:>8}",
        "tick", "true", "expected", "min", "max"
    );
    for tick in 0..TICKS {
        // Cars drive; the anonymizer re-cloaks and refreshes the server.
        let updates = generator.tick(1.0, &mut rng);
        let mut true_count = 0usize;
        for (i, pos) in updates {
            casper.move_user(UserId(i as u64), pos);
            if district.contains(pos) {
                true_count += 1;
            }
        }
        // The administrator queries the server directly — a public query
        // over private data; no anonymizer involved (Figure 1).
        let answer = casper.admin_count(&district);
        println!(
            "{tick:>5} {true_count:>8} {:>10.1} {:>8} {:>8}",
            answer.expected_count,
            answer.min_count(),
            answer.max_count()
        );
        assert!(
            (answer.min_count()..=answer.max_count()).contains(&true_count),
            "true count must always lie within the answer bounds"
        );
    }
    println!("(true count verified to lie in [min, max] on every tick)");
}
