//! High-rate location-update ingestion through the batch API of the
//! concurrent request plane.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```
//!
//! Four producer threads fire batched location updates (as a cellular
//! backbone would) into one shared [`ParallelEngine`] while the main
//! thread keeps serving cloaks — the paper's efficiency requirement
//! ("cope with the continuous movement of large numbers of mobile
//! users") exercised concurrently. Updates for different shards of the
//! [`ShardedAnonymizer`] proceed in parallel; the cloaking reader never
//! blocks on more than one shard lock.

use std::sync::Arc;
use std::time::Instant;

use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 20_000;
const UPDATES_PER_PRODUCER: usize = 50_000;
const PRODUCERS: usize = 4;
const BATCH: usize = 1_000;

fn main() {
    // A 9-level pyramid split at level 2 → 16 shards, 4 pool workers.
    let engine = Arc::new(ParallelEngine::sharded(9, 2, PRODUCERS));

    // Register the population in one partitioned batch.
    let mut rng = StdRng::seed_from_u64(3);
    let population: Vec<(UserId, Profile, Point)> = (0..USERS)
        .map(|i| {
            (
                UserId(i as u64),
                Profile::new(rng.gen_range(1..=50), 0.0),
                Point::new(rng.gen(), rng.gen()),
            )
        })
        .collect();
    assert_eq!(engine.register_batch(population), USERS);

    let start = Instant::now();
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let engine = Arc::clone(&engine);
        producers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + p as u64);
            let mut sent = 0usize;
            while sent < UPDATES_PER_PRODUCER {
                let n = BATCH.min(UPDATES_PER_PRODUCER - sent);
                let batch: Vec<(UserId, Point)> = (0..n)
                    .map(|_| {
                        (
                            UserId(rng.gen_range(0..USERS as u64)),
                            Point::new(rng.gen(), rng.gen()),
                        )
                    })
                    .collect();
                sent += engine.update_batch(batch);
            }
            sent
        }));
    }

    // Meanwhile: serve cloaks from the main thread against the same
    // engine. Reads take one shard lock each, so they interleave with
    // the producers' per-shard writes.
    let mut cloaks = 0usize;
    let mut rng = StdRng::seed_from_u64(500);
    while producers.iter().any(|p| !p.is_finished()) {
        let uid = UserId(rng.gen_range(0..USERS as u64));
        if let Response::Cloaked(Some(_)) = engine.submit(Request::Cloak { uid }) {
            cloaks += 1;
        }
    }
    let total_updates: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();

    let elapsed = start.elapsed();
    println!("=== batched concurrent ingestion ===");
    println!("location updates applied : {total_updates}");
    println!("cloaked regions served   : {cloaks} (concurrently)");
    println!(
        "throughput               : {:.0} updates/s over {elapsed:?}",
        total_updates as f64 / elapsed.as_secs_f64()
    );
    println!(
        "registered users intact  : {}",
        engine.anonymizer().user_count()
    );
    println!(
        "server regions in step   : {}",
        engine.with_server(|s| s.private_count())
    );
}
