//! High-rate location-update ingestion with the streaming anonymizer.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```
//!
//! Four producer threads fire location updates (as a cellular backbone
//! would) while the main thread keeps serving cloaked queries — the
//! paper's efficiency requirement ("cope with the continuous movement of
//! large numbers of mobile users") exercised concurrently.

use std::sync::Arc;
use std::time::Instant;

use casper::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 20_000;
const UPDATES_PER_PRODUCER: usize = 50_000;
const PRODUCERS: usize = 4;

fn main() {
    let streaming = Arc::new(StreamingAnonymizer::spawn(
        AdaptiveAnonymizer::adaptive(9),
        4096,
    ));

    // Register the population.
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..USERS {
        streaming.register(
            UserId(i as u64),
            Profile::new(rng.gen_range(1..=50), 0.0),
            Point::new(rng.gen(), rng.gen()),
        );
    }
    streaming.flush();

    let start = Instant::now();
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let s = Arc::clone(&streaming);
        producers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + p as u64);
            for _ in 0..UPDATES_PER_PRODUCER {
                let uid = UserId(rng.gen_range(0..USERS as u64));
                s.update_location(uid, Point::new(rng.gen(), rng.gen()));
            }
        }));
    }

    // Meanwhile: serve cloaked queries from the main thread.
    let mut queries = 0usize;
    let mut rng = StdRng::seed_from_u64(500);
    while producers.iter().any(|p| !p.is_finished()) {
        let uid = UserId(rng.gen_range(0..USERS as u64));
        if streaming.write(|a| a.cloak_query(uid)).is_some() {
            queries += 1;
        }
    }
    for p in producers {
        p.join().unwrap();
    }
    streaming.flush();

    let elapsed = start.elapsed();
    let total_updates = PRODUCERS * UPDATES_PER_PRODUCER;
    println!("=== streaming ingestion ===");
    println!("location updates applied : {total_updates}");
    println!("cloaked queries served   : {queries} (concurrently)");
    println!(
        "throughput               : {:.0} updates/s over {elapsed:?}",
        total_updates as f64 / elapsed.as_secs_f64()
    );
    println!(
        "registered users intact  : {}",
        streaming.read(|a| a.user_count())
    );
}
