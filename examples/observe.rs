//! Observability walkthrough: a mobility workload against the remote
//! pipeline under an increasingly hostile chaos proxy, watched entirely
//! through the telemetry layer.
//!
//! ```text
//! cargo run --release --example observe
//! ```
//!
//! * a few hundred residents move along a synthetic road network and
//!   query through [`RemoteCasper`] — i.e. over a real TCP hop;
//! * a deterministic [`ChaosProxy`] sits on that hop, first transparent,
//!   then dropping frames, then severing the link entirely;
//! * the networked server exposes the process-wide metrics page over
//!   HTTP (printed here; `curl` it yourself while the run is live);
//! * on the first [`QueryOutcome::Degraded`] the flight recorder is
//!   dumped, showing the failing request's trace id and recent history.

use std::net::SocketAddr;
use std::time::Duration;

use casper::core::faults::{ChaosProxy, FaultConfig};
use casper::core::net::ServerConfig;
use casper::core::{ClientConfig, NetworkServer, QueryOutcome, RemoteCasper, RetryPolicy};
use casper::mobility::uniform_targets;
use casper::prelude::*;
use casper::telemetry;
use rand::{rngs::StdRng, Rng, SeedableRng};

const RESIDENTS: usize = 150;
const TICKS: usize = 4;

fn lossy_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(25),
        write_timeout: Duration::from_millis(400),
        retry: RetryPolicy {
            max_retries: 20,
            base_delay: Duration::from_millis(2),
            multiplier: 1.3,
            max_delay: Duration::from_millis(20),
            jitter: 0.2,
        },
        jitter_seed: 0x0B5E,
        ..ClientConfig::default()
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(20060912);
    let network = NetworkBuilder::new().build(&mut rng);
    let mut generator = MovingObjectGenerator::new(network, RESIDENTS, &mut rng);

    // Server side: public targets plus the metrics HTTP listener.
    let mut backend = CasperServer::new();
    backend.load_public_targets(
        uniform_targets(1_000, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u64), p)),
    );
    let server = NetworkServer::spawn_with(
        backend,
        FilterCount::Four,
        ServerConfig {
            metrics_http: Some(SocketAddr::from(([127, 0, 0, 1], 0))),
            ..ServerConfig::default()
        },
    )
    .expect("spawn networked server");
    println!(
        "metrics live at http://{}/metrics  (try: curl during the run)",
        server.metrics_addr().expect("metrics listener")
    );

    // The anonymizer↔server hop goes through the chaos proxy: phase 1
    // transparent, phase 2 lossy (the seeded fault stream makes every run
    // identical).
    let proxy = ChaosProxy::spawn(
        server.addr(),
        FaultConfig {
            seed: 0x0B5E_CAFE,
            drop_frame: 0.06,
            disconnect: 0.01,
            ..FaultConfig::default()
        },
    )
    .expect("spawn chaos proxy");
    let mut remote = RemoteCasper::with_config(
        AdaptiveAnonymizer::adaptive(9),
        proxy.addr(),
        lossy_client(),
    );

    for i in 0..RESIDENTS {
        remote.register_user(
            UserId(i as u64),
            Profile::new(rng.gen_range(1..=20), 0.0),
            generator.object(i).position(),
        );
    }

    // Phase 1+2: mobility ticks with queries, through the lossy link.
    let (mut answered, mut degraded) = (0usize, 0usize);
    for tick in 0..TICKS {
        for (i, pos) in generator.tick(1.0, &mut rng) {
            remote.move_user(UserId(i as u64), pos);
        }
        for _ in 0..30 {
            let uid = UserId(rng.gen_range(0..RESIDENTS as u64));
            match remote.query_nn(uid) {
                Some(QueryOutcome::Answered(_)) => answered += 1,
                Some(QueryOutcome::Degraded { .. }) => degraded += 1,
                None => {}
            }
        }
        println!(
            "tick {tick}: answered={answered} degraded={degraded} injected_faults={} \
             pending={} (high water {})",
            proxy.injected(),
            remote.pending_updates(),
            remote.pending_high_water(),
        );
    }

    // Phase 3: kill the server mid-flight. The next query degrades, and
    // the flight recorder reconstructs what the request went through.
    println!("\n--- killing the server: forcing a degraded query ---");
    server.shutdown();
    for (i, pos) in generator.tick(1.0, &mut rng) {
        remote.move_user(UserId(i as u64), pos);
    }
    let outcome = remote.query_nn(UserId(0)).expect("user 0 is registered");
    match outcome {
        QueryOutcome::Degraded {
            trace_id,
            pending_updates,
            ref error,
        } => {
            degraded += 1;
            println!(
                "query degraded: trace_id={trace_id}, {pending_updates} updates queued, \
                 error: {error}"
            );
            println!("\nflight recorder — events for trace {trace_id}:");
            for event in telemetry::flight().dump_trace(trace_id) {
                println!("{event}");
            }
            println!("\nfull flight dump (most recent history):");
            print!("{}", telemetry::flight().render());
        }
        QueryOutcome::Answered(_) => println!("server survived the shutdown race; re-run"),
    }

    // The metrics page an operator would scrape, from the same registry
    // the (now dead) server was serving over HTTP.
    println!("\n--- metrics page ---");
    print!("{}", telemetry::registry().render());
    println!(
        "\nworkload totals: answered={answered} degraded={degraded} overwritten_pending={}",
        remote.overwritten_updates(),
    );
    proxy.shutdown();
}
